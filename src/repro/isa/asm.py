"""Tiny assembler used by the Golite code generator and by tests.

Supports forward label references inside one function body; labels
resolve to :class:`LabelRef` instruction indices, which the linker later
turns into absolute addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.isa.instr import Instr, LabelRef, Operand
from repro.isa.opcodes import Op


@dataclass
class Label:
    """A local jump target; placed at most once."""

    name: str
    index: int | None = None


@dataclass
class Asm:
    """Accumulates instructions for one function."""

    instrs: list[Instr] = field(default_factory=list)
    _fixups: list[tuple[int, Label]] = field(default_factory=list)
    _label_count: int = 0

    def __len__(self) -> int:
        return len(self.instrs)

    def emit(self, op: Op, imm1: Operand = 0, imm2: int = 0) -> int:
        """Append an instruction; returns its index."""
        self.instrs.append(Instr(op, imm1, imm2))
        return len(self.instrs) - 1

    def new_label(self, hint: str = "L") -> Label:
        self._label_count += 1
        return Label(f"{hint}{self._label_count}")

    def place(self, label: Label) -> None:
        if label.index is not None:
            raise CompileError(f"label {label.name} placed twice")
        label.index = len(self.instrs)

    def branch(self, op: Op, label: Label) -> None:
        """Emit a branch to a (possibly not yet placed) label."""
        index = self.emit(op, 0)
        self._fixups.append((index, label))

    def finish(self) -> list[Instr]:
        """Resolve label fixups; returns the instruction list."""
        for index, label in self._fixups:
            if label.index is None:
                raise CompileError(f"label {label.name} never placed")
            old = self.instrs[index]
            self.instrs[index] = Instr(old.op, LabelRef(label.index), old.imm2)
        self._fixups.clear()
        return self.instrs
