"""Instruction set of the simulated stack machine.

Values in flight live on a CPU-internal operand stack (the "register
file"); call frames, locals, globals, and heap data live in simulated
memory and are subject to the active execution environment's view.
Instructions are fixed-width (16 bytes) so `.text` sections have real,
page-aligned extents.
"""

from __future__ import annotations

import enum

INSTR_SIZE = 16


class Op(enum.IntEnum):
    NOP = 0
    HALT = 1          # pop exit code; stop the program

    # Constants and operand-stack shuffling.
    PUSH = 2          # push imm1
    DROP = 3
    DUP = 4
    SWAP = 5

    # Frame-relative accesses (locals live in simulated memory).
    LOADL = 6         # push mem[fp + 16 + 8*imm1]
    STOREL = 7        # mem[fp + 16 + 8*imm1] = pop
    ADDRL = 8         # push fp + 16 + 8*imm1

    # Absolute accesses.
    LOAD = 9          # pop addr; push mem64[addr]
    STORE = 10        # pop value; pop addr; mem64[addr] = value
    LOAD1 = 11        # pop addr; push mem8[addr]
    STORE1 = 12       # pop value; pop addr; mem8[addr] = value
    MEMCPY = 13       # pop n; pop src; pop dst

    # Arithmetic / logic (binary ops pop b then a, push a OP b).
    ADD = 20
    SUB = 21
    MUL = 22
    DIV = 23
    MOD = 24
    AND = 25
    OR = 26
    XOR = 27
    SHL = 28
    SHR = 29
    NEG = 30
    NOT = 31          # logical: push 1 if pop == 0 else 0

    # Comparisons (signed; push 0/1).
    EQ = 40
    NE = 41
    LT = 42
    LE = 43
    GT = 44
    GE = 45

    # Control flow (imm1 = absolute target address).
    JMP = 50
    JZ = 51           # pop cond; jump if zero
    JNZ = 52
    CALL = 53         # imm1 = target
    CALLCLO = 54      # pop closure ptr; imm2 = user-arg count
    RET = 55
    ENTER = 56        # imm1 = nargs, imm2 = nlocals (>= nargs)

    # System interfaces.
    SYSCALL = 60      # pop nr; pop imm1 args (reversed); push result
    RTCALL = 61       # imm1 = runtime service id, imm2 = nargs
    LBCALL = 62       # imm1 = LitterBox hook id, imm2 = nargs

    # MPK register (only LitterBox-owned text may contain WRPKRU).
    WRPKRU = 70       # pop value
    RDPKRU = 71       # push value


#: One past the highest opcode value; sizes the interpreter's dispatch
#: table and the per-opcode perf counters.
NUM_OPCODES = max(Op) + 1


#: LitterBox hook ids for the LBCALL instruction (mirrors the API, §4.2).
class Hook(enum.IntEnum):
    PROLOG = 0
    EPILOG = 1
    TRANSFER = 2
    EXECUTE = 3


#: Opcodes that write the PKRU register.  The MPK backend scans every
#: executable section at Init to ensure only LitterBox's own text
#: contains them (ERIM-style binary inspection, §5.3).
PKRU_WRITING_OPS = frozenset({Op.WRPKRU})

BINARY_ALU = {
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
    Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
    Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE,
}

COMPARISONS = (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE)

# --------------------------------------------------------------- fusion
# Superinstruction fusion: the loader's peephole pass replaces an
# adjacent pair of instructions with one fused handler that performs
# both (identical simulated charges, identical architectural effects —
# a wall-clock dispatch saving only).
#
# Safety contract for the *first* element of a pair: it must be a
# straight-line op — it completes unconditionally, advances the pc by
# exactly one instruction, and can never raise WouldBlock.  A fault it
# raises leaves the pc on the pair's first instruction, exactly as the
# unfused sequence would.  The second element may be anything: the
# fused handler retires the first half (pc advanced) before running it,
# so faults, branches, and WouldBlock retries observe the same pc and
# operand stack as unfused execution.  The pairs below are the hot
# adjacencies of the Table 2 workloads: push+binop, load/store shapes,
# and compare+branch.

_FUSED_EXTRA = (
    (Op.LOADL, Op.PUSH), (Op.LOADL, Op.LOADL), (Op.LOADL, Op.STOREL),
    (Op.LOADL, Op.ADD), (Op.PUSH, Op.LOADL), (Op.LOAD, Op.PUSH),
    (Op.LOAD, Op.STORE), (Op.LOAD, Op.LT), (Op.LOAD, Op.MUL),
    (Op.ADD, Op.LOAD), (Op.ADD, Op.STOREL), (Op.ADD, Op.LOADL),
    (Op.MUL, Op.LOADL), (Op.STOREL, Op.LOADL), (Op.STOREL, Op.JMP),
    (Op.DROP, Op.LOADL),
)

#: The fused pairs, in slot order.  Slot ``i`` dispatches at opcode
#: ``FUSED_BASE + i``; the perf counters index the same space.
FUSED_PAIRS: tuple[tuple[int, int], ...] = tuple(
    [(Op.PUSH, op) for op in sorted(BINARY_ALU)]
    + [(cmp, branch) for cmp in COMPARISONS
       for branch in (Op.JZ, Op.JNZ)]
    + list(_FUSED_EXTRA)
)

#: Fused pseudo-opcodes live directly above the real opcode space.
FUSED_BASE = NUM_OPCODES
DISPATCH_SLOTS = FUSED_BASE + len(FUSED_PAIRS)

#: Pseudo-opcode of a JIT region entry (see :mod:`repro.isa.jit`).
#: It sits one past the dispatch table so ``op >= JIT_OP`` is a single
#: comparison in the slice loop; JIT entries never land in
#: ``op_counts`` (regions account their constituent groups instead).
JIT_OP = DISPATCH_SLOTS

#: (op1, op2) -> fused dispatch slot.
FUSED_INDEX: dict[tuple[int, int], int] = {
    pair: FUSED_BASE + i for i, pair in enumerate(FUSED_PAIRS)}

#: Slot-ordered display names ("PUSH+ADD"), for the perf counters.
FUSED_NAMES: tuple[str, ...] = tuple(
    f"{Op(a).name}+{Op(b).name}" for a, b in FUSED_PAIRS)
