"""Instruction representation, encoding, and symbolic operands.

Before linking, an instruction's ``imm1`` may be symbolic: a
:class:`SymRef` naming a global symbol (``"pkg.func"``, ``"pkg.var"``,
``"lit:<id>"`` for rodata literals) or a :class:`LabelRef` naming a
local jump target inside the same function.  The linker resolves both
into absolute addresses and then encodes to bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import LinkError
from repro.isa.opcodes import INSTR_SIZE, Op

_FMT = struct.Struct("<BBhiq")  # op, reserved, imm2, reserved, imm1
assert _FMT.size == INSTR_SIZE


@dataclass(frozen=True)
class SymRef:
    """Reference to a linker-resolved global symbol, plus a byte offset."""

    name: str
    offset: int = 0

    def __repr__(self) -> str:
        return f"@{self.name}+{self.offset}" if self.offset else f"@{self.name}"


@dataclass(frozen=True)
class LabelRef:
    """Reference to an instruction index within the same function."""

    index: int

    def __repr__(self) -> str:
        return f"L{self.index}"


Operand = int | SymRef | LabelRef


@dataclass(frozen=True)
class Instr:
    """One instruction; ``imm1`` may still be symbolic before linking."""

    op: Op
    imm1: Operand = 0
    imm2: int = 0

    def is_resolved(self) -> bool:
        return isinstance(self.imm1, int)

    def encode(self) -> bytes:
        if not isinstance(self.imm1, int):
            raise LinkError(f"encoding unresolved instruction {self}")
        return _FMT.pack(int(self.op), 0, self.imm2, 0, self.imm1)

    @staticmethod
    def decode(raw: bytes) -> "Instr":
        op, _, imm2, _, imm1 = _FMT.unpack(raw)
        return Instr(Op(op), imm1, imm2)

    def __repr__(self) -> str:
        parts = [self.op.name]
        if self.imm1 or isinstance(self.imm1, (SymRef, LabelRef)):
            parts.append(repr(self.imm1) if not isinstance(self.imm1, int)
                         else str(self.imm1))
        if self.imm2:
            parts.append(f"n={self.imm2}")
        return " ".join(parts)


def encode_all(instrs: list[Instr]) -> bytes:
    return b"".join(i.encode() for i in instrs)


def resolve(instrs: list[Instr], func_addr: int,
            symbols: dict[str, int]) -> list[Instr]:
    """Resolve symbolic operands given the function's base address and
    the global symbol table."""
    resolved: list[Instr] = []
    for instr in instrs:
        imm1 = instr.imm1
        if isinstance(imm1, LabelRef):
            imm1 = func_addr + imm1.index * INSTR_SIZE
        elif isinstance(imm1, SymRef):
            base = symbols.get(imm1.name)
            if base is None:
                raise LinkError(f"undefined symbol {imm1.name!r}")
            imm1 = base + imm1.offset
        resolved.append(Instr(instr.op, imm1, instr.imm2))
    return resolved
