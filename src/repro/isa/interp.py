"""The fetch/decode/execute loop of the simulated CPU.

Each executed instruction charges simulated time; loads, stores, and
instruction fetches are permission-checked by the MMU against the
CPU's current translation context, which is what makes enclosure
memory views enforceable against arbitrary compiled code.

Fast paths (wall-clock only; simulated costs are unchanged):

* **fetch** — instead of a full MMU walk per instruction, the
  interpreter caches the exec-validity of the current code page as a
  tag ``(vpn, ctx, table, table_gen, ept, ept_gen)`` and revalidates it
  with cheap identity/int comparisons each step.  Any page-table edit
  (generation bump), context switch, or CR3 write makes the tag stale
  and forces a checked fetch, so enforcement is identical to walking.
* **dispatch** — opcodes index a handler table (built once per
  interpreter) instead of walking a long ``if``/``elif`` chain, and the
  binary ALU ops index :data:`_ALU_FUNCS` instead of re-deciding which
  operator applies on every instruction.
* **superinstruction fusion** — :meth:`Interpreter.register_code` runs
  a load-time peephole pass that replaces hot adjacent pairs
  (push+binop, load/store shapes, compare+branch; see
  :data:`repro.isa.opcodes.FUSED_PAIRS`) with one :class:`FusedInstr`
  dispatching a single fused handler.  The original second instruction
  is kept at its own address, so jumps into the middle of a pair
  execute it unfused; a pair never spans a page boundary, so the
  per-page exec check still covers every fetched byte.  Fused handlers
  charge exactly the two instructions' simulated costs and retire the
  first half (pc advanced) before running the second, so faults and
  ``WouldBlock`` retries observe the same pc and operand stack as
  unfused execution.
"""

from __future__ import annotations

from repro.errors import Fault, MachineHalt, SimError, WouldBlock
from repro.hw.clock import COSTS, SimClock
from repro.hw.cpu import CPU
from repro.hw.mmu import MMU, wrap64
from repro.hw.pages import PAGE_SHIFT
from repro.isa.instr import Instr
from repro.isa.jit import JitCompiler
from repro.isa.opcodes import (
    DISPATCH_SLOTS,
    FUSED_BASE,
    FUSED_INDEX,
    FUSED_PAIRS,
    INSTR_SIZE,
    JIT_OP,
    NUM_OPCODES,
    Op,
)


class GoroutineExit(SimError):
    """The current goroutine returned from its top-level function."""


class FusedInstr:
    """Two adjacent instructions fused into one dispatch.

    ``op`` is the fused pseudo-opcode (``FUSED_BASE + pair index``);
    ``i1``/``i2`` are the original decoded instructions and ``h1``/``h2``
    their unfused handlers (used by the generic fused handler; the
    specialized ones read ``i1``/``i2`` directly).
    """

    __slots__ = ("op", "i1", "i2", "h1", "h2")

    def __init__(self, op: int, i1: Instr, i2: Instr, h1, h2):
        self.op = op
        self.i1 = i1
        self.i2 = i2
        self.h1 = h1
        self.h2 = h2


_U64 = (1 << 64) - 1


class Interpreter:
    """Executes instructions against a :class:`CPU`."""

    def __init__(self, mmu: MMU, clock: SimClock, fusion: bool = True,
                 jit: bool = False, jit_threshold: int = 8):
        self.mmu = mmu
        self.clock = clock
        self.perf = mmu.perf
        #: Whether register_code runs the superinstruction peephole.
        self.fusion = fusion
        #: Trace-JIT compiler (None when the `jit` switch is off); see
        #: :mod:`repro.isa.jit`.  Engaged only by the slice loops —
        #: :meth:`step` always interprets.
        self.jit = JitCompiler(self, jit_threshold) if jit else None
        #: Architectural instructions retired by complete dispatch
        #: groups of a JIT region before the group that faulted (see
        #: :meth:`_jit_fault`); folded into :attr:`slice_executed`.
        self._jit_partial = 0
        #: vaddr -> decoded instruction, filled by the loader.  Text pages
        #: are never writable, so the cache cannot go stale.
        self.code: dict[int, Instr] = {}
        #: Exec-validity tag of the most recently fetched code page;
        #: ``None`` forces the next fetch through the MMU.
        self._exec_tag: tuple | None = None
        #: Architectural instructions retired by the most recent
        #: :meth:`run_slice` call (valid even if it raised).
        self.slice_executed = 0
        #: Sim-time sampling profiler, wired by the machine.  Checked
        #: once per slice, never per instruction: the null path's loop
        #: body is untouched (see :meth:`_run_slice_profiled`).
        self._profiler = None
        self._dispatch = _build_dispatch()

    @property
    def profiler(self):
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        # Compiled traces bake in whether they drain the profiler at
        # group boundaries, so changing the profiler invalidates them.
        if value is not self._profiler and self.jit is not None:
            self.jit.flush()
        self._profiler = value

    def register_code(self, base: int, instrs: list[Instr]) -> None:
        code = self.code
        for offset, instr in enumerate(instrs):
            code[base + offset * INSTR_SIZE] = instr
        if not self.fusion:
            if self.jit is not None:
                self.jit.register(base, instrs)
            return
        # Peephole: overwrite the *first* address of each fusible pair
        # with a FusedInstr.  The second instruction stays at its own
        # address, so a jump into the middle of a pair executes it
        # unfused.  Greedy, non-overlapping, never across a page
        # boundary (the fused handler runs both halves under the first
        # page's exec tag).
        dispatch = self._dispatch
        index = 0
        last = len(instrs) - 1
        while index < last:
            a = instrs[index]
            slot = FUSED_INDEX.get((a.op, instrs[index + 1].op))
            if slot is None:
                index += 1
                continue
            pc0 = base + index * INSTR_SIZE
            if (pc0 >> PAGE_SHIFT) != ((pc0 + INSTR_SIZE) >> PAGE_SHIFT):
                index += 1
                continue
            b = instrs[index + 1]
            code[pc0] = FusedInstr(slot, a, b, dispatch[a.op], dispatch[b.op])
            index += 2
        if self.jit is not None:
            # After fusion, so region discovery walks the real dispatch
            # groups (a fused pair is one group).
            self.jit.register(base, instrs)

    # -- single step -------------------------------------------------------

    def fetch(self, cpu: CPU) -> Instr:
        """Checked fetch (reference path; ``step`` inlines the fast one)."""
        self.mmu.check_exec(cpu.ctx, cpu.pc)
        instr = self.code.get(cpu.pc)
        if instr is None:
            raw = self.mmu.read(cpu.ctx, cpu.pc, INSTR_SIZE, charge=False)
            instr = Instr.decode(raw)
            self.code[cpu.pc] = instr
        elif instr.op >= JIT_OP:
            instr = instr.orig
        return instr

    def step(self, cpu: CPU) -> int:
        """Execute one dispatch and return how many architectural
        instructions it covered (1, or 2 for a fused pair — the
        scheduler budgets time slices in instructions, not dispatches).

        Raises :class:`WouldBlock` (instruction rolled back),
        :class:`GoroutineExit`, :class:`MachineHalt`, or a
        :class:`Fault`.
        """
        pc = cpu.pc
        ctx = cpu.ctx
        tag = self._exec_tag
        if tag is None or tag[0] != pc >> PAGE_SHIFT or tag[1] is not ctx \
                or tag[2] is not ctx.page_table or tag[3] != tag[2].gen \
                or tag[4] is not ctx.ept \
                or (tag[4] is not None and tag[5] != tag[4].gen):
            self.perf.fetch_slow += 1
            self._exec_tag = self.mmu.exec_tag(ctx, pc)
        instr = self.code.get(pc)
        if instr is None:
            raw = self.mmu.read(ctx, pc, INSTR_SIZE, charge=False)
            instr = Instr.decode(raw)
            self.code[pc] = instr
        op = instr.op
        if op >= JIT_OP:
            # Single-step always interprets; region entry is a slice-
            # loop concern (warm-up counting included, so step-driven
            # runs stay deterministic).
            instr = instr.orig
            op = instr.op
        self.perf.op_counts[op] += 1
        handler = self._dispatch[op]
        if handler is None:  # pragma: no cover
            raise Fault("exec", f"unknown opcode {op!r} at {pc:#x}")
        handler(self, cpu, instr)
        return 1 if op < FUSED_BASE else 2

    def run_slice(self, cpu: CPU, budget: int) -> int:
        """Execute dispatches until at least ``budget`` architectural
        instructions have retired; returns the count.

        Semantically identical to looping :meth:`step` — this just
        hoists the per-step attribute lookups (code cache, dispatch
        table, perf counters) out of the loop, which is the scheduler's
        hottest path.  The running count is also stored in
        :attr:`slice_executed` *before* any exception propagates, so the
        scheduler's total-instruction accounting (step-budget overrun
        detection) stays exact when a slice ends early on a fault,
        ``WouldBlock``, or exit.
        """
        if self.profiler is not None:
            return self._run_slice_profiled(cpu, budget)
        executed = 0
        code = self.code
        dispatch = self._dispatch
        perf = self.perf
        op_counts = perf.op_counts
        mmu = self.mmu
        jit_op = JIT_OP
        self._jit_partial = 0
        try:
            while executed < budget:
                pc = cpu.pc
                ctx = cpu.ctx
                tag = self._exec_tag
                if tag is None or tag[0] != pc >> PAGE_SHIFT \
                        or tag[1] is not ctx \
                        or tag[2] is not ctx.page_table \
                        or tag[3] != tag[2].gen \
                        or tag[4] is not ctx.ept \
                        or (tag[4] is not None and tag[5] != tag[4].gen):
                    perf.fetch_slow += 1
                    self._exec_tag = mmu.exec_tag(ctx, pc)
                instr = code.get(pc)
                if instr is None:
                    raw = mmu.read(ctx, pc, INSTR_SIZE, charge=False)
                    instr = Instr.decode(raw)
                    code[pc] = instr
                op = instr.op
                if op >= jit_op:
                    fn = instr.fn
                    if fn is not None and budget - executed >= instr.length \
                            and len(cpu.operands) >= instr.min_depth:
                        n = fn(self, cpu, budget - executed)
                        if n:
                            executed += n
                            continue
                    instr = self._jit_fallback(instr, cpu, budget - executed)
                    op = instr.op
                op_counts[op] += 1
                handler = dispatch[op]
                if handler is None:  # pragma: no cover
                    raise Fault("exec", f"unknown opcode {op!r} at {pc:#x}")
                handler(self, cpu, instr)
                executed += 1 if op < FUSED_BASE else 2
        finally:
            self.slice_executed = executed + self._jit_partial
        return executed

    def _run_slice_profiled(self, cpu: CPU, budget: int) -> int:
        """:meth:`run_slice` with a retire-boundary drain for the
        sampling profiler.  A separate copy of the loop so the unprofiled
        path pays nothing; the drain itself charges no simulated cost,
        so sim-ns stays bit-identical with profiling on."""
        executed = 0
        code = self.code
        dispatch = self._dispatch
        perf = self.perf
        op_counts = perf.op_counts
        mmu = self.mmu
        profiler = self.profiler
        clock = self.clock
        jit_op = JIT_OP
        self._jit_partial = 0
        try:
            while executed < budget:
                pc = cpu.pc
                ctx = cpu.ctx
                tag = self._exec_tag
                if tag is None or tag[0] != pc >> PAGE_SHIFT \
                        or tag[1] is not ctx \
                        or tag[2] is not ctx.page_table \
                        or tag[3] != tag[2].gen \
                        or tag[4] is not ctx.ept \
                        or (tag[4] is not None and tag[5] != tag[4].gen):
                    perf.fetch_slow += 1
                    self._exec_tag = mmu.exec_tag(ctx, pc)
                instr = code.get(pc)
                if instr is None:
                    raw = mmu.read(ctx, pc, INSTR_SIZE, charge=False)
                    instr = Instr.decode(raw)
                    code[pc] = instr
                op = instr.op
                if op >= jit_op:
                    fn = instr.fn
                    if fn is not None and budget - executed >= instr.length \
                            and len(cpu.operands) >= instr.min_depth:
                        # Profiled traces drain at their own group
                        # boundaries (including the last), so no drain
                        # is due here.
                        n = fn(self, cpu, budget - executed)
                        if n:
                            executed += n
                            continue
                    instr = self._jit_fallback(instr, cpu, budget - executed)
                    op = instr.op
                op_counts[op] += 1
                handler = dispatch[op]
                if handler is None:  # pragma: no cover
                    raise Fault("exec", f"unknown opcode {op!r} at {pc:#x}")
                handler(self, cpu, instr)
                executed += 1 if op < FUSED_BASE else 2
                if profiler.next_due <= clock.now_ns:
                    profiler.drain_retire(pc)
        finally:
            self.slice_executed = executed + self._jit_partial
        return executed

    # -- JIT cooperation ------------------------------------------------------

    def _jit_fallback(self, entry, cpu: CPU, remaining: int):
        """A region entry could not run compiled: count why, warm cold
        regions, and hand the displaced instruction to the interpreter
        (which *is* the deopt path — it executes the region exactly)."""
        if entry.fn is None:
            self.jit.warm(entry)
        else:
            deopts = self.perf.jit_deopts
            if remaining < entry.length:
                reason = "budget"
            elif len(cpu.operands) < entry.min_depth:
                reason = "depth"
            else:
                reason = "guard"
            deopts[reason] = deopts.get(reason, 0) + 1
        return entry.orig

    def _jit_fault(self, cpu: CPU, entry_pc: int, done: int = 0) -> None:
        """Called from a compiled trace's except hook before it
        re-raises: replay the per-dispatch accounting the interpreter
        would have recorded up to the faulting instruction.

        ``done`` is the architectural count of *complete loop
        iterations* (0 for straight-line traces).  ``cpu.pc`` was
        synced by the trace before the faulting op.  Interpreted
        execution increments ``op_counts`` *before* a dispatch and
        ``executed`` only *after* a handler returns, so every complete
        group plus the faulting group is counted, while
        :attr:`slice_executed` (via ``_jit_partial``) covers complete
        groups only — a faulting fused pair contributes neither half,
        exactly as in ``run_slice``.  Prevalidated locals retired
        before the fault each took the word fast path, so their
        ``word_fast``/``tlb_hits`` are replayed here too (the trace's
        dynamic-word tallies were already flushed by its except hook).
        """
        perf = self.perf
        deopts = perf.jit_deopts
        deopts["fault"] = deopts.get("fault", 0) + 1
        region = self.jit.entries[entry_pc].region
        instrs = region.instrs
        idx = (cpu.pc - entry_pc) // INSTR_SIZE
        if idx < 0 or idx >= region.length:  # pragma: no cover
            idx = 0
        op_counts = perf.op_counts
        iters = done // region.length
        retired = done
        before_fault = True
        for slot, start, arch in region.groups:
            # Every group ran once per complete iteration; in the
            # faulting pass, groups up to and including the faulting
            # one were dispatched (hence counted) once more.
            op_counts[slot] += iters
            if before_fault:
                op_counts[slot] += 1
                if start <= idx < start + arch:
                    before_fault = False
                else:
                    retired += arch
        n_local = sum(1 for ins in instrs
                      if ins.op in (Op.LOADL, Op.STOREL))
        if n_local:
            pre = sum(1 for ins in instrs[:idx]
                      if ins.op in (Op.LOADL, Op.STOREL))
            extra = pre + n_local * iters
            perf.word_fast += extra
            perf.tlb_hits += extra
        perf.jit_insns += retired
        self._jit_partial = retired

    def flush_jit(self) -> None:
        """Invalidate all compiled traces (no-op when the JIT is off).
        Wired to quarantine trips; any page-policy edit site may call
        it."""
        if self.jit is not None:
            self.jit.flush()

    # -- helpers -------------------------------------------------------------

    def _do_call(self, cpu: CPU, target: int, ret_pc: int) -> None:
        cpu.clock.charge(COSTS.INSN_CALL)
        frame = cpu.sp
        cpu.check_stack(frame + 16)
        self.mmu.write_word(cpu.ctx, frame, cpu.fp, charge=False)
        self.mmu.write_word(cpu.ctx, frame + 8, ret_pc, charge=False)
        cpu.fp = frame
        cpu.sp = frame + 16

    def _guarded(self, cpu: CPU, action, *args) -> None:
        """Run a popping action; on WouldBlock restore the operand stack
        so the instruction can be retried after wake-up."""
        saved = list(cpu.operands)
        try:
            action(cpu, *args)
        except WouldBlock:
            cpu.operands = saved
            raise

    def _do_syscall(self, cpu: CPU, nargs: int) -> None:
        if cpu.syscall_handler is None:
            raise Fault("syscall", "no syscall handler wired")
        nr = cpu.pop()
        args = tuple(cpu.popn(nargs))
        cpu.push(wrap64(cpu.syscall_handler(cpu, nr, args)))

    def _do_rtcall(self, cpu: CPU, service: int, nargs: int) -> None:
        if cpu.rtcall_handler is None:
            raise Fault("exec", "no runtime handler wired")
        cpu.clock.charge(COSTS.RTCALL)
        args = tuple(cpu.popn(nargs))
        cpu.push(wrap64(cpu.rtcall_handler(cpu, service, args)))

    def _do_lbcall(self, cpu: CPU, hook: int, nargs: int) -> None:
        if cpu.lbcall_handler is None:
            raise Fault("exec", "no LitterBox handler wired")
        args = tuple(cpu.popn(nargs))
        cpu.push(wrap64(cpu.lbcall_handler(cpu, hook, args)))

    # -- opcode handlers ------------------------------------------------------
    # Each handler performs the instruction's effects and only then
    # advances ``cpu.pc``, so a fault or WouldBlock raised mid-handler
    # leaves the instruction retriable (same contract as before the
    # table-dispatch refactor).

    def _op_push(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN
        cpu.push(instr.imm1)
        cpu.pc += INSTR_SIZE

    def _op_loadl(self, cpu: CPU, instr: Instr) -> None:
        cpu.push(self.mmu.read_word(cpu.ctx, cpu.fp + 16 + 8 * instr.imm1))
        cpu.pc += INSTR_SIZE

    def _op_storel(self, cpu: CPU, instr: Instr) -> None:
        self.mmu.write_word(cpu.ctx, cpu.fp + 16 + 8 * instr.imm1, cpu.pop())
        cpu.pc += INSTR_SIZE

    def _op_addrl(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN
        cpu.push(cpu.fp + 16 + 8 * instr.imm1)
        cpu.pc += INSTR_SIZE

    def _op_load(self, cpu: CPU, instr: Instr) -> None:
        cpu.push(self.mmu.read_word(cpu.ctx, cpu.pop()))
        cpu.pc += INSTR_SIZE

    def _op_store(self, cpu: CPU, instr: Instr) -> None:
        value = cpu.pop()
        addr = cpu.pop()
        self.mmu.write_word(cpu.ctx, addr, value)
        cpu.pc += INSTR_SIZE

    def _op_load1(self, cpu: CPU, instr: Instr) -> None:
        cpu.push(self.mmu.read_byte(cpu.ctx, cpu.pop()))
        cpu.pc += INSTR_SIZE

    def _op_store1(self, cpu: CPU, instr: Instr) -> None:
        value = cpu.pop()
        addr = cpu.pop()
        self.mmu.write_byte(cpu.ctx, addr, value)
        cpu.pc += INSTR_SIZE

    def _op_memcpy(self, cpu: CPU, instr: Instr) -> None:
        n = cpu.pop()
        src = cpu.pop()
        dst = cpu.pop()
        if n < 0:
            raise Fault("arith", "negative MEMCPY length")
        self.mmu.memcpy(cpu.ctx, dst, src, n)
        cpu.pc += INSTR_SIZE

    def _op_neg(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN
        cpu.push(wrap64(-cpu.pop()))
        cpu.pc += INSTR_SIZE

    def _op_not(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN
        cpu.push(1 if cpu.pop() == 0 else 0)
        cpu.pc += INSTR_SIZE

    def _op_drop(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN
        cpu.pop()
        cpu.pc += INSTR_SIZE

    def _op_dup(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN
        cpu.push(cpu.peek())
        cpu.pc += INSTR_SIZE

    def _op_swap(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN
        b = cpu.pop()
        a = cpu.pop()
        cpu.push(b)
        cpu.push(a)
        cpu.pc += INSTR_SIZE

    def _op_jmp(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN_BRANCH
        cpu.pc = instr.imm1

    def _op_jz(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN_BRANCH
        cpu.pc = instr.imm1 if cpu.pop() == 0 else cpu.pc + INSTR_SIZE

    def _op_jnz(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN_BRANCH
        cpu.pc = instr.imm1 if cpu.pop() != 0 else cpu.pc + INSTR_SIZE

    def _op_call(self, cpu: CPU, instr: Instr) -> None:
        target = instr.imm1
        self._do_call(cpu, target, cpu.pc + INSTR_SIZE)
        cpu.pc = target

    def _op_callclo(self, cpu: CPU, instr: Instr) -> None:
        clo = cpu.pop()
        code_addr = self.mmu.read_word(cpu.ctx, clo)
        cpu.push(clo)  # hidden environment argument
        self._do_call(cpu, code_addr, cpu.pc + INSTR_SIZE)
        cpu.pc = code_addr

    def _op_ret(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.charge(COSTS.INSN_CALL)
        ret_pc = self.mmu.read_word(cpu.ctx, cpu.fp + 8)
        saved_fp = self.mmu.read_word(cpu.ctx, cpu.fp)
        cpu.sp = cpu.fp
        cpu.fp = saved_fp
        if ret_pc == 0:
            raise GoroutineExit()
        cpu.pc = ret_pc

    def _op_enter(self, cpu: CPU, instr: Instr) -> None:
        clock = cpu.clock
        clock.charge(COSTS.INSN)
        nargs, nlocals = instr.imm1, instr.imm2
        new_sp = cpu.fp + 16 + 8 * nlocals
        cpu.check_stack(new_sp)
        cpu.sp = new_sp
        values = cpu.popn(nargs)
        for slot, value in enumerate(values):
            self.mmu.write_word(cpu.ctx, cpu.fp + 16 + 8 * slot, value,
                                charge=False)
        clock.charge(COSTS.INSN_MEM * nargs)
        cpu.pc += INSTR_SIZE

    def _op_syscall(self, cpu: CPU, instr: Instr) -> None:
        self._guarded(cpu, self._do_syscall, instr.imm1)
        cpu.pc += INSTR_SIZE

    def _op_rtcall(self, cpu: CPU, instr: Instr) -> None:
        self._guarded(cpu, self._do_rtcall, instr.imm1, instr.imm2)
        cpu.pc += INSTR_SIZE

    def _op_lbcall(self, cpu: CPU, instr: Instr) -> None:
        self._guarded(cpu, self._do_lbcall, instr.imm1, instr.imm2)
        cpu.pc += INSTR_SIZE

    def _op_wrpkru(self, cpu: CPU, instr: Instr) -> None:
        cpu.write_pkru(cpu.pop())
        cpu.pc += INSTR_SIZE

    def _op_rdpkru(self, cpu: CPU, instr: Instr) -> None:
        cpu.push(cpu.read_pkru())
        cpu.pc += INSTR_SIZE

    def _op_nop(self, cpu: CPU, instr: Instr) -> None:
        cpu.clock.now_ns += COSTS.INSN
        cpu.pc += INSTR_SIZE

    def _op_halt(self, cpu: CPU, instr: Instr) -> None:
        raise MachineHalt(cpu.pop())

    def _op_fused(self, cpu: CPU, f: FusedInstr) -> None:
        """Generic fused pair: run both original handlers back to back.

        ``h1`` retires completely (charges, effects, pc advance) before
        ``h2`` runs, so anything ``h2`` raises — a fault, a branch
        taken, a WouldBlock retry — sees exactly the state the unfused
        sequence would have at the second instruction.
        """
        f.h1(self, cpu, f.i1)
        f.h2(self, cpu, f.i2)

    # -- driving --------------------------------------------------------------

    def run(self, cpu: CPU, max_steps: int = 50_000_000) -> int:
        """Run a single-goroutine program until HALT.

        Convenience driver for tests and simple programs; multi-goroutine
        programs are driven by the scheduler instead.
        """
        steps = 0
        try:
            while steps < max_steps:
                steps += self.step(cpu)
        except MachineHalt as halt:
            cpu.halted = True
            cpu.exit_code = halt.exit_code
            return halt.exit_code
        except GoroutineExit:
            cpu.halted = True
            return 0
        raise Fault("exec", f"program exceeded {max_steps} steps")


def _trunc_div(a: int, b: int) -> int:
    """C/Go-style truncated integer division (round toward zero)."""
    quotient = a // b
    if quotient < 0 and quotient * b != a:
        quotient += 1
    return quotient


def _alu_add(a: int, b: int) -> int:
    return wrap64(a + b)


def _alu_sub(a: int, b: int) -> int:
    return wrap64(a - b)


def _alu_mul(a: int, b: int) -> int:
    return wrap64(a * b)


def _alu_div(a: int, b: int) -> int:
    if b == 0:
        raise Fault("arith", "integer divide by zero")
    return wrap64(_trunc_div(a, b))


def _alu_mod(a: int, b: int) -> int:
    if b == 0:
        raise Fault("arith", "integer modulo by zero")
    return wrap64(a - _trunc_div(a, b) * b)


def _alu_and(a: int, b: int) -> int:
    return wrap64(a & b)


def _alu_or(a: int, b: int) -> int:
    return wrap64(a | b)


def _alu_xor(a: int, b: int) -> int:
    return wrap64(a ^ b)


def _alu_shl(a: int, b: int) -> int:
    return wrap64(a << (b & 63))


def _alu_shr(a: int, b: int) -> int:
    return wrap64((a & _U64) >> (b & 63))


#: Binary ALU semantics, indexed by opcode (comparisons inline the 0/1
#: encoding; dict instead of if/elif so dispatch is one lookup).
_ALU_FUNCS: dict[int, object] = {
    Op.ADD: _alu_add,
    Op.SUB: _alu_sub,
    Op.MUL: _alu_mul,
    Op.DIV: _alu_div,
    Op.MOD: _alu_mod,
    Op.AND: _alu_and,
    Op.OR: _alu_or,
    Op.XOR: _alu_xor,
    Op.SHL: _alu_shl,
    Op.SHR: _alu_shr,
    Op.EQ: lambda a, b: 1 if a == b else 0,
    Op.NE: lambda a, b: 1 if a != b else 0,
    Op.LT: lambda a, b: 1 if a < b else 0,
    Op.LE: lambda a, b: 1 if a <= b else 0,
    Op.GT: lambda a, b: 1 if a > b else 0,
    Op.GE: lambda a, b: 1 if a >= b else 0,
}


def _binop(op: Op, a: int, b: int) -> int:
    """Apply one binary ALU operation (table-driven)."""
    fn = _ALU_FUNCS.get(op)
    if fn is None:
        raise Fault("exec", f"not a binary op: {op!r}")  # pragma: no cover
    return fn(a, b)


def _make_alu_handler(fn):
    def handler(self, cpu, instr):
        cpu.clock.now_ns += COSTS.INSN
        a, b = cpu.pop2()
        cpu.push(fn(a, b))
        cpu.pc += INSTR_SIZE
    return handler


def _make_push_alu_handler(fn):
    """Fused PUSH imm; BINOP — the pushed immediate is consumed
    immediately, so it never round-trips through the operand stack.

    The two INSN charges stay separate adds (float accumulation order
    is part of bit-identity) and both land, with the pc on the second
    instruction, before ``fn`` can fault (divide/modulo by zero); an
    operand-stack underflow leaves the same stack the unfused sequence
    would (its push is undone by its own pop b).
    """
    def handler(self, cpu, f):
        clock = cpu.clock
        clock.now_ns += COSTS.INSN
        clock.now_ns += COSTS.INSN
        cpu.pc += INSTR_SIZE
        cpu.push(fn(cpu.pop(), f.i1.imm1))
        cpu.pc += INSTR_SIZE
    return handler


def _make_cmp_branch_handler(fn, jnz):
    """Fused CMP; JZ/JNZ — the 0/1 flag is branched on directly instead
    of being pushed and re-popped.  Charges stay split (INSN before the
    compare's pops, INSN_BRANCH after the compare retires) so even the
    underflow path is cycle-identical to unfused."""
    def handler(self, cpu, f):
        cpu.clock.now_ns += COSTS.INSN
        a, b = cpu.pop2()
        cond = fn(a, b)
        cpu.pc += INSTR_SIZE
        cpu.clock.now_ns += COSTS.INSN_BRANCH
        if (cond != 0) == jnz:
            cpu.pc = f.i2.imm1
        else:
            cpu.pc += INSTR_SIZE
    return handler


# -- specialized fused handlers ---------------------------------------------
# Hand-inlined bodies for the hottest fused pairs, replacing the generic
# _op_fused's two nested handler calls.  Same contract as every fused
# handler: simulated charges are the exact per-instruction float adds in
# unfused order (read_word/write_word charge INSN_MEM internally), and
# the first half retires — pc advanced, effects landed — before the
# second half can fault or block, so interrupted pairs are observably
# identical to unfused execution.


def _fused_loadl_push(self, cpu, f):
    cpu.operands.append(
        self.mmu.read_word(cpu.ctx, cpu.fp + 16 + 8 * f.i1.imm1))
    cpu.pc += INSTR_SIZE
    cpu.clock.now_ns += COSTS.INSN
    cpu.operands.append(f.i2.imm1)
    cpu.pc += INSTR_SIZE


def _fused_loadl_loadl(self, cpu, f):
    mmu = self.mmu
    ctx = cpu.ctx
    base = cpu.fp + 16
    cpu.operands.append(mmu.read_word(ctx, base + 8 * f.i1.imm1))
    cpu.pc += INSTR_SIZE
    cpu.operands.append(mmu.read_word(ctx, base + 8 * f.i2.imm1))
    cpu.pc += INSTR_SIZE


def _fused_loadl_storel(self, cpu, f):
    # The loaded word moves straight into the target slot; the unfused
    # push/pop round-trip nets to the same stack at every fault point.
    mmu = self.mmu
    ctx = cpu.ctx
    base = cpu.fp + 16
    value = mmu.read_word(ctx, base + 8 * f.i1.imm1)
    cpu.pc += INSTR_SIZE
    mmu.write_word(ctx, base + 8 * f.i2.imm1, value)
    cpu.pc += INSTR_SIZE


def _fused_loadl_add(self, cpu, f):
    value = self.mmu.read_word(cpu.ctx, cpu.fp + 16 + 8 * f.i1.imm1)
    cpu.pc += INSTR_SIZE
    cpu.clock.now_ns += COSTS.INSN
    cpu.push(_alu_add(cpu.pop(), value))
    cpu.pc += INSTR_SIZE


def _fused_push_loadl(self, cpu, f):
    cpu.clock.now_ns += COSTS.INSN
    cpu.operands.append(f.i1.imm1)
    cpu.pc += INSTR_SIZE
    cpu.operands.append(
        self.mmu.read_word(cpu.ctx, cpu.fp + 16 + 8 * f.i2.imm1))
    cpu.pc += INSTR_SIZE


def _fused_load_push(self, cpu, f):
    cpu.operands.append(self.mmu.read_word(cpu.ctx, cpu.pop()))
    cpu.pc += INSTR_SIZE
    cpu.clock.now_ns += COSTS.INSN
    cpu.operands.append(f.i2.imm1)
    cpu.pc += INSTR_SIZE


def _fused_load_store(self, cpu, f):
    mmu = self.mmu
    ctx = cpu.ctx
    value = mmu.read_word(ctx, cpu.pop())
    cpu.pc += INSTR_SIZE
    addr = cpu.pop()
    mmu.write_word(ctx, addr, value)
    cpu.pc += INSTR_SIZE


def _fused_load_lt(self, cpu, f):
    value = self.mmu.read_word(cpu.ctx, cpu.pop())
    cpu.pc += INSTR_SIZE
    cpu.clock.now_ns += COSTS.INSN
    cpu.operands.append(1 if cpu.pop() < value else 0)
    cpu.pc += INSTR_SIZE


def _fused_load_mul(self, cpu, f):
    value = self.mmu.read_word(cpu.ctx, cpu.pop())
    cpu.pc += INSTR_SIZE
    cpu.clock.now_ns += COSTS.INSN
    cpu.push(_alu_mul(cpu.pop(), value))
    cpu.pc += INSTR_SIZE


def _fused_add_load(self, cpu, f):
    cpu.clock.now_ns += COSTS.INSN
    a, b = cpu.pop2()
    addr = _alu_add(a, b)
    cpu.pc += INSTR_SIZE
    cpu.operands.append(self.mmu.read_word(cpu.ctx, addr))
    cpu.pc += INSTR_SIZE


def _fused_add_storel(self, cpu, f):
    cpu.clock.now_ns += COSTS.INSN
    a, b = cpu.pop2()
    value = _alu_add(a, b)
    cpu.pc += INSTR_SIZE
    self.mmu.write_word(cpu.ctx, cpu.fp + 16 + 8 * f.i2.imm1, value)
    cpu.pc += INSTR_SIZE


def _fused_add_loadl(self, cpu, f):
    cpu.clock.now_ns += COSTS.INSN
    a, b = cpu.pop2()
    cpu.operands.append(_alu_add(a, b))
    cpu.pc += INSTR_SIZE
    cpu.operands.append(
        self.mmu.read_word(cpu.ctx, cpu.fp + 16 + 8 * f.i2.imm1))
    cpu.pc += INSTR_SIZE


def _fused_mul_loadl(self, cpu, f):
    cpu.clock.now_ns += COSTS.INSN
    a, b = cpu.pop2()
    cpu.operands.append(_alu_mul(a, b))
    cpu.pc += INSTR_SIZE
    cpu.operands.append(
        self.mmu.read_word(cpu.ctx, cpu.fp + 16 + 8 * f.i2.imm1))
    cpu.pc += INSTR_SIZE


def _fused_storel_loadl(self, cpu, f):
    mmu = self.mmu
    ctx = cpu.ctx
    base = cpu.fp + 16
    mmu.write_word(ctx, base + 8 * f.i1.imm1, cpu.pop())
    cpu.pc += INSTR_SIZE
    cpu.operands.append(mmu.read_word(ctx, base + 8 * f.i2.imm1))
    cpu.pc += INSTR_SIZE


def _fused_storel_jmp(self, cpu, f):
    # The intermediate pc0+16 between the halves is unobservable (no
    # fault can land between the store retiring and the jump), so the
    # jump writes pc directly.
    self.mmu.write_word(cpu.ctx, cpu.fp + 16 + 8 * f.i1.imm1, cpu.pop())
    cpu.pc += INSTR_SIZE
    cpu.clock.now_ns += COSTS.INSN_BRANCH
    cpu.pc = f.i2.imm1


def _fused_drop_loadl(self, cpu, f):
    cpu.clock.now_ns += COSTS.INSN
    cpu.pop()
    cpu.pc += INSTR_SIZE
    cpu.operands.append(
        self.mmu.read_word(cpu.ctx, cpu.fp + 16 + 8 * f.i2.imm1))
    cpu.pc += INSTR_SIZE


#: Pair -> hand-specialized handler; pairs not listed here fall back to
#: the push+binop / cmp+branch factories or the generic _op_fused.
_FUSED_SPECIAL = {
    (Op.LOADL, Op.PUSH): _fused_loadl_push,
    (Op.LOADL, Op.LOADL): _fused_loadl_loadl,
    (Op.LOADL, Op.STOREL): _fused_loadl_storel,
    (Op.LOADL, Op.ADD): _fused_loadl_add,
    (Op.PUSH, Op.LOADL): _fused_push_loadl,
    (Op.LOAD, Op.PUSH): _fused_load_push,
    (Op.LOAD, Op.STORE): _fused_load_store,
    (Op.LOAD, Op.LT): _fused_load_lt,
    (Op.LOAD, Op.MUL): _fused_load_mul,
    (Op.ADD, Op.LOAD): _fused_add_load,
    (Op.ADD, Op.STOREL): _fused_add_storel,
    (Op.ADD, Op.LOADL): _fused_add_loadl,
    (Op.MUL, Op.LOADL): _fused_mul_loadl,
    (Op.STOREL, Op.LOADL): _fused_storel_loadl,
    (Op.STOREL, Op.JMP): _fused_storel_jmp,
    (Op.DROP, Op.LOADL): _fused_drop_loadl,
}


def _build_dispatch() -> list:
    """Opcode -> handler table (shared shape; built per interpreter so
    handlers stay plain functions called as ``handler(self, cpu, instr)``).
    Slots at and above ``FUSED_BASE`` hold the fused-pair handlers."""
    table: list = [None] * DISPATCH_SLOTS
    named = {
        Op.NOP: Interpreter._op_nop,
        Op.HALT: Interpreter._op_halt,
        Op.PUSH: Interpreter._op_push,
        Op.DROP: Interpreter._op_drop,
        Op.DUP: Interpreter._op_dup,
        Op.SWAP: Interpreter._op_swap,
        Op.LOADL: Interpreter._op_loadl,
        Op.STOREL: Interpreter._op_storel,
        Op.ADDRL: Interpreter._op_addrl,
        Op.LOAD: Interpreter._op_load,
        Op.STORE: Interpreter._op_store,
        Op.LOAD1: Interpreter._op_load1,
        Op.STORE1: Interpreter._op_store1,
        Op.MEMCPY: Interpreter._op_memcpy,
        Op.NEG: Interpreter._op_neg,
        Op.NOT: Interpreter._op_not,
        Op.JMP: Interpreter._op_jmp,
        Op.JZ: Interpreter._op_jz,
        Op.JNZ: Interpreter._op_jnz,
        Op.CALL: Interpreter._op_call,
        Op.CALLCLO: Interpreter._op_callclo,
        Op.RET: Interpreter._op_ret,
        Op.ENTER: Interpreter._op_enter,
        Op.SYSCALL: Interpreter._op_syscall,
        Op.RTCALL: Interpreter._op_rtcall,
        Op.LBCALL: Interpreter._op_lbcall,
        Op.WRPKRU: Interpreter._op_wrpkru,
        Op.RDPKRU: Interpreter._op_rdpkru,
    }
    for op, handler in named.items():
        table[op] = handler
    for op, fn in _ALU_FUNCS.items():
        table[op] = _make_alu_handler(fn)
    for i, (op1, op2) in enumerate(FUSED_PAIRS):
        fused = _FUSED_SPECIAL.get((op1, op2))
        if fused is not None:
            pass
        elif op1 == Op.PUSH and op2 in _ALU_FUNCS:
            fused = _make_push_alu_handler(_ALU_FUNCS[op2])
        elif op2 in (Op.JZ, Op.JNZ) and op1 in _ALU_FUNCS:
            fused = _make_cmp_branch_handler(_ALU_FUNCS[op1], op2 == Op.JNZ)
        else:
            fused = Interpreter._op_fused
        table[FUSED_BASE + i] = fused
    return table
