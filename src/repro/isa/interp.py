"""The fetch/decode/execute loop of the simulated CPU.

Each executed instruction charges simulated time; loads, stores, and
instruction fetches are permission-checked by the MMU against the
CPU's current translation context, which is what makes enclosure
memory views enforceable against arbitrary compiled code.
"""

from __future__ import annotations

from repro.errors import Fault, MachineHalt, SimError, WouldBlock
from repro.hw.clock import COSTS, SimClock
from repro.hw.cpu import CPU
from repro.hw.mmu import MMU, wrap64
from repro.isa.instr import Instr
from repro.isa.opcodes import INSTR_SIZE, Op


class GoroutineExit(SimError):
    """The current goroutine returned from its top-level function."""


_U64 = (1 << 64) - 1


class Interpreter:
    """Executes instructions against a :class:`CPU`."""

    def __init__(self, mmu: MMU, clock: SimClock):
        self.mmu = mmu
        self.clock = clock
        #: vaddr -> decoded instruction, filled by the loader.  Text pages
        #: are never writable, so the cache cannot go stale.
        self.code: dict[int, Instr] = {}

    def register_code(self, base: int, instrs: list[Instr]) -> None:
        for offset, instr in enumerate(instrs):
            self.code[base + offset * INSTR_SIZE] = instr

    # -- single step -------------------------------------------------------

    def fetch(self, cpu: CPU) -> Instr:
        self.mmu.check_exec(cpu.ctx, cpu.pc)
        instr = self.code.get(cpu.pc)
        if instr is None:
            raw = self.mmu.read(cpu.ctx, cpu.pc, INSTR_SIZE, charge=False)
            instr = Instr.decode(raw)
            self.code[cpu.pc] = instr
        return instr

    def step(self, cpu: CPU) -> None:
        """Execute exactly one instruction.

        Raises :class:`WouldBlock` (instruction rolled back),
        :class:`GoroutineExit`, :class:`MachineHalt`, or a
        :class:`Fault`.
        """
        instr = self.fetch(cpu)
        op = instr.op
        imm1 = instr.imm1
        imm2 = instr.imm2
        clock = cpu.clock
        next_pc = cpu.pc + INSTR_SIZE

        if op == Op.PUSH:
            clock.charge(COSTS.INSN)
            cpu.push(imm1)
        elif op == Op.LOADL:
            cpu.push(self.mmu.read_word(cpu.ctx, cpu.fp + 16 + 8 * imm1))
        elif op == Op.STOREL:
            self.mmu.write_word(cpu.ctx, cpu.fp + 16 + 8 * imm1, cpu.pop())
        elif op == Op.ADDRL:
            clock.charge(COSTS.INSN)
            cpu.push(cpu.fp + 16 + 8 * imm1)
        elif op == Op.LOAD:
            cpu.push(self.mmu.read_word(cpu.ctx, cpu.pop()))
        elif op == Op.STORE:
            value = cpu.pop()
            addr = cpu.pop()
            self.mmu.write_word(cpu.ctx, addr, value)
        elif op == Op.LOAD1:
            cpu.push(self.mmu.read_byte(cpu.ctx, cpu.pop()))
        elif op == Op.STORE1:
            value = cpu.pop()
            addr = cpu.pop()
            self.mmu.write_byte(cpu.ctx, addr, value)
        elif op == Op.MEMCPY:
            n = cpu.pop()
            src = cpu.pop()
            dst = cpu.pop()
            if n < 0:
                raise Fault("arith", "negative MEMCPY length")
            self.mmu.memcpy(cpu.ctx, dst, src, n)
        elif Op.ADD <= op <= Op.GE and op != Op.NEG and op != Op.NOT:
            clock.charge(COSTS.INSN)
            b = cpu.pop()
            a = cpu.pop()
            cpu.push(_binop(op, a, b))
        elif op == Op.NEG:
            clock.charge(COSTS.INSN)
            cpu.push(wrap64(-cpu.pop()))
        elif op == Op.NOT:
            clock.charge(COSTS.INSN)
            cpu.push(1 if cpu.pop() == 0 else 0)
        elif op == Op.DROP:
            clock.charge(COSTS.INSN)
            cpu.pop()
        elif op == Op.DUP:
            clock.charge(COSTS.INSN)
            cpu.push(cpu.peek())
        elif op == Op.SWAP:
            clock.charge(COSTS.INSN)
            b = cpu.pop()
            a = cpu.pop()
            cpu.push(b)
            cpu.push(a)
        elif op == Op.JMP:
            clock.charge(COSTS.INSN_BRANCH)
            next_pc = imm1
        elif op == Op.JZ:
            clock.charge(COSTS.INSN_BRANCH)
            if cpu.pop() == 0:
                next_pc = imm1
        elif op == Op.JNZ:
            clock.charge(COSTS.INSN_BRANCH)
            if cpu.pop() != 0:
                next_pc = imm1
        elif op == Op.CALL:
            self._do_call(cpu, imm1, next_pc)
            next_pc = imm1
        elif op == Op.CALLCLO:
            clo = cpu.pop()
            code_addr = self.mmu.read_word(cpu.ctx, clo)
            cpu.push(clo)  # hidden environment argument
            self._do_call(cpu, code_addr, next_pc)
            next_pc = code_addr
        elif op == Op.RET:
            clock.charge(COSTS.INSN_CALL)
            ret_pc = self.mmu.read_word(cpu.ctx, cpu.fp + 8)
            saved_fp = self.mmu.read_word(cpu.ctx, cpu.fp)
            cpu.sp = cpu.fp
            cpu.fp = saved_fp
            if ret_pc == 0:
                raise GoroutineExit()
            next_pc = ret_pc
        elif op == Op.ENTER:
            clock.charge(COSTS.INSN)
            nargs, nlocals = imm1, imm2
            new_sp = cpu.fp + 16 + 8 * nlocals
            cpu.check_stack(new_sp)
            cpu.sp = new_sp
            values = cpu.popn(nargs)
            for slot, value in enumerate(values):
                self.mmu.write_word(cpu.ctx, cpu.fp + 16 + 8 * slot, value,
                                    charge=False)
            clock.charge(COSTS.INSN_MEM * nargs)
        elif op == Op.SYSCALL:
            self._guarded(cpu, self._do_syscall, imm1)
        elif op == Op.RTCALL:
            self._guarded(cpu, self._do_rtcall, imm1, imm2)
        elif op == Op.LBCALL:
            self._guarded(cpu, self._do_lbcall, imm1, imm2)
        elif op == Op.WRPKRU:
            cpu.write_pkru(cpu.pop())
        elif op == Op.RDPKRU:
            cpu.push(cpu.read_pkru())
        elif op == Op.NOP:
            clock.charge(COSTS.INSN)
        elif op == Op.HALT:
            raise MachineHalt(cpu.pop())
        else:  # pragma: no cover
            raise Fault("exec", f"unknown opcode {op!r} at {cpu.pc:#x}")

        cpu.pc = next_pc

    # -- helpers -------------------------------------------------------------

    def _do_call(self, cpu: CPU, target: int, ret_pc: int) -> None:
        cpu.clock.charge(COSTS.INSN_CALL)
        frame = cpu.sp
        cpu.check_stack(frame + 16)
        self.mmu.write_word(cpu.ctx, frame, cpu.fp, charge=False)
        self.mmu.write_word(cpu.ctx, frame + 8, ret_pc, charge=False)
        cpu.fp = frame
        cpu.sp = frame + 16

    def _guarded(self, cpu: CPU, action, *args) -> None:
        """Run a popping action; on WouldBlock restore the operand stack
        so the instruction can be retried after wake-up."""
        saved = list(cpu.operands)
        try:
            action(cpu, *args)
        except WouldBlock:
            cpu.operands = saved
            raise

    def _do_syscall(self, cpu: CPU, nargs: int) -> None:
        if cpu.syscall_handler is None:
            raise Fault("syscall", "no syscall handler wired")
        nr = cpu.pop()
        args = tuple(cpu.popn(nargs))
        cpu.push(wrap64(cpu.syscall_handler(cpu, nr, args)))

    def _do_rtcall(self, cpu: CPU, service: int, nargs: int) -> None:
        if cpu.rtcall_handler is None:
            raise Fault("exec", "no runtime handler wired")
        cpu.clock.charge(COSTS.RTCALL)
        args = tuple(cpu.popn(nargs))
        cpu.push(wrap64(cpu.rtcall_handler(cpu, service, args)))

    def _do_lbcall(self, cpu: CPU, hook: int, nargs: int) -> None:
        if cpu.lbcall_handler is None:
            raise Fault("exec", "no LitterBox handler wired")
        args = tuple(cpu.popn(nargs))
        cpu.push(wrap64(cpu.lbcall_handler(cpu, hook, args)))

    # -- driving --------------------------------------------------------------

    def run(self, cpu: CPU, max_steps: int = 50_000_000) -> int:
        """Run a single-goroutine program until HALT.

        Convenience driver for tests and simple programs; multi-goroutine
        programs are driven by the scheduler instead.
        """
        steps = 0
        try:
            while steps < max_steps:
                self.step(cpu)
                steps += 1
        except MachineHalt as halt:
            cpu.halted = True
            cpu.exit_code = halt.exit_code
            return halt.exit_code
        except GoroutineExit:
            cpu.halted = True
            return 0
        raise Fault("exec", f"program exceeded {max_steps} steps")


def _trunc_div(a: int, b: int) -> int:
    """C/Go-style truncated integer division (round toward zero)."""
    quotient = a // b
    if quotient < 0 and quotient * b != a:
        quotient += 1
    return quotient


def _binop(op: Op, a: int, b: int) -> int:
    if op == Op.ADD:
        return wrap64(a + b)
    if op == Op.SUB:
        return wrap64(a - b)
    if op == Op.MUL:
        return wrap64(a * b)
    if op == Op.DIV:
        if b == 0:
            raise Fault("arith", "integer divide by zero")
        return wrap64(_trunc_div(a, b))
    if op == Op.MOD:
        if b == 0:
            raise Fault("arith", "integer modulo by zero")
        return wrap64(a - _trunc_div(a, b) * b)
    if op == Op.AND:
        return wrap64(a & b)
    if op == Op.OR:
        return wrap64(a | b)
    if op == Op.XOR:
        return wrap64(a ^ b)
    if op == Op.SHL:
        return wrap64(a << (b & 63))
    if op == Op.SHR:
        return wrap64((a & _U64) >> (b & 63))
    if op == Op.EQ:
        return 1 if a == b else 0
    if op == Op.NE:
        return 1 if a != b else 0
    if op == Op.LT:
        return 1 if a < b else 0
    if op == Op.LE:
        return 1 if a <= b else 0
    if op == Op.GT:
        return 1 if a > b else 0
    if op == Op.GE:
        return 1 if a >= b else 0
    raise Fault("exec", f"not a binary op: {op!r}")  # pragma: no cover
