"""The simulated instruction set: opcodes, encoding, assembler, interpreter."""

from repro.isa.asm import Asm, Label
from repro.isa.instr import Instr, LabelRef, SymRef, encode_all, resolve
from repro.isa.interp import GoroutineExit, Interpreter
from repro.isa.opcodes import BINARY_ALU, Hook, INSTR_SIZE, Op, PKRU_WRITING_OPS

__all__ = [
    "Asm", "Label",
    "Instr", "LabelRef", "SymRef", "encode_all", "resolve",
    "GoroutineExit", "Interpreter",
    "BINARY_ALU", "Hook", "INSTR_SIZE", "Op", "PKRU_WRITING_OPS",
]
