"""Trace-JIT: compile hot golite regions to generated Python.

PR 4's superinstruction fusion still pays one Python-level dispatch per
(fused) instruction.  This module removes that cost for hot code: at
load time it discovers *regions* — runs of simple opcodes inside one
code page, optionally ending in a branch — and, once a region has been
entered ``jit_threshold`` times, compiles it into one generated Python
function that executes the whole region in a single call from
:meth:`Interpreter.run_slice`.  A region whose terminator branches back
to its own entry with net stack delta zero compiles to a ``while``
*loop trace* that retires many iterations per call (with *side exits*
for conditional breaks out of the body); regions may also contain
runtime calls — CHAN_SEND/RECV as guarded calls, pure services inlined
as one dispatch, and SLICE_AT/SLICE_PUT with the stock handlers'
descriptor-read and element-access fast paths flattened directly into
the trace.

The contract is the same one every fast path in this repo has met:
**every simulated value is bit-identical with the JIT on or off.**  The
generated code performs the exact same sequence of individual float
adds to ``clock.now_ns`` (accumulation order is part of bit-identity;
the trace accumulates in a local ``now`` and stores back at every
point another component can observe the clock), the same MMU/TLB
checks with the same fallbacks, and the same perf counter increments
(batched where addition commutes).  Three mechanisms make that hold at
every observable point:

* **Region grammar.**  Regions contain only simple ops (stack
  shuffling, locals, absolute loads/stores, ALU, member RTCALLs) plus
  at most one terminating branch.  Nothing inside a region can switch
  environments or leave the code page, so the only early exits are
  faults and channel ``WouldBlock`` (whose stack-restore retry runs
  through the same ``_guarded`` helper the interpreter uses).
* **Guards, not checks-per-op.**  Entry guards — run_slice refuses to
  enter a region when the remaining slice budget or operand-stack
  depth is insufficient, and the trace itself refuses (returns ``0``,
  nothing observable done) when the frame's locals span a page, the
  fault injector is armed, the TLB can't prevalidate the locals page,
  or a slice-specialized trace meets a non-stock rtcall handler — plus
  a per-call prevalidation of the frame's locals page hoist the
  per-access work.  The trace protocol is ``fn(interp, cpu, left) ->
  int``: ``0`` means an entry guard failed and the interpreter
  executes the region instruction-by-instruction — a pure wall-clock
  *deopt*, never a semantic difference, because the interpreter is the
  reference; any other return is the architectural instructions
  retired.
* **Precise fault deopt.**  ``cpu.pc`` is synced before every
  instruction that can fault (memory ops, DIV/MOD, MEMCPY, RTCALL), so
  a fault observes the same pc, operand stack, and accumulated sim-ns
  as interpreted execution; an ``except`` hook flushes the clock and
  counter tallies and re-raises after :meth:`Interpreter._jit_fault`
  replays the per-dispatch-group ``op_counts`` and slice accounting
  the interpreter would have recorded (a dispatch whose handler raises
  is *not* counted in ``slice_executed`` — fused pairs included — and
  the JIT reproduces exactly that, including complete loop iterations
  before the faulting pass).

Regions are discovered along *dispatch groups* (a fused pair is one
group): ``op_counts`` batching credits the fused pseudo-op slots, and
the profiled variant drains the sampling profiler at group boundaries
with the group-start pc — both exactly what ``_run_slice_profiled``
does.  The per-machine entry cache is keyed ``(entry_pc,
generation)``; quarantine trips and policy edits bump the generation
via :meth:`JitCompiler.flush` so stale traces are never re-entered
(per-dispatch safety additionally rests on ``run_slice``'s
generation-checked exec tag, which the JIT does not bypass).  The
compiled function objects themselves are shared process-wide through a
source-keyed cache (:data:`_COMPILED`): machines built from the same
image generate identical source, so each trace is compiled once per
process, not once per machine.
"""

from __future__ import annotations

import struct

from repro.errors import Fault
from repro.hw.clock import COSTS
from repro.hw.mmu import _UWORD, _WORD, wrap64
from repro.hw.pages import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE
from repro.isa.instr import Instr
from repro.isa.opcodes import (
    BINARY_ALU,
    FUSED_BASE,
    INSTR_SIZE,
    JIT_OP,
    Op,
)

#: Minimum architectural instructions for a region to be worth a trace.
JIT_MIN_LEN = 4
#: Cap so generated functions stay small enough for CPython to like.
JIT_MAX_LEN = 256

#: Ops a region may contain (straight-line, never WouldBlock, never
#: leave the page except by falling off the end).
_SIMPLE = frozenset({
    Op.NOP, Op.PUSH, Op.DROP, Op.DUP, Op.SWAP,
    Op.LOADL, Op.STOREL, Op.ADDRL,
    Op.LOAD, Op.STORE, Op.LOAD1, Op.STORE1, Op.MEMCPY,
    Op.NEG, Op.NOT,
}) | frozenset(BINARY_ALU)

#: Ops that may terminate a region (write pc and end it).
_TERM = frozenset({Op.JMP, Op.JZ, Op.JNZ})

#: Runtime services a trace may call inline, by :class:`repro.runtime.
#: runtime.RT` value (numeric to avoid an isa -> runtime import cycle).
#: The bar for membership: the service must never map/unmap/retag pages
#: or switch environments — every hoisted translation (TLB generations,
#: prevalidated locals frames, PKRU) must stay valid across the call.
#: That excludes every allocating service (the span-grab slow path
#: issues SYS_MMAP and a LitterBox Transfer), GO/PRINT/METRICS (kernel
#: and scheduler machinery), and PANIC (pointless to trace).
#: CHAN_SEND/CHAN_RECV may raise WouldBlock, so traces call them
#: through the interpreter's ``_guarded`` exactly as ``_op_rtcall``
#: does; the rest dispatch directly.
_RT_GUARDED = frozenset({4, 5})                # CHAN_SEND, CHAN_RECV
_RT_PURE = frozenset({6, 7,                    # CHAN_CLOSE, CHAN_LEN
                      11, 12, 14, 17,          # STR_EQ/CMP/AT, ATOI
                      22, 23, 26})             # SLICE_AT/PUT/COPY
_RT_MEMBER = _RT_GUARDED | _RT_PURE

#: Slice element access dominates RTCALL traffic in every macro
#: workload (HTTP request parsing and bild's pixel loops are both
#: byte/word indexing through a slice descriptor), so traces open-code
#: these two against the hoisted TLB state instead of dispatching.
#: Valid only while ``cpu.rtcall_handler`` is the stock
#: ``Runtime.dispatch`` — checked once per trace entry.
_RT_SLICE_AT = 22
_RT_SLICE_PUT = 23

#: Lazily resolved ``Runtime.dispatch`` (late import: repro.runtime
#: pulls in repro.isa.interp via the scheduler).
_RT_DISPATCH = None


def _runtime_dispatch():
    global _RT_DISPATCH
    if _RT_DISPATCH is None:
        from repro.runtime.runtime import Runtime
        _RT_DISPATCH = Runtime.dispatch
    return _RT_DISPATCH

#: op -> (operands required on entry, net stack delta).
_STACK_EFFECT = {
    Op.NOP: (0, 0), Op.PUSH: (0, 1), Op.DROP: (1, -1), Op.DUP: (1, 1),
    Op.SWAP: (2, 0), Op.LOADL: (0, 1), Op.STOREL: (1, -1),
    Op.ADDRL: (0, 1), Op.LOAD: (1, 0), Op.STORE: (2, -2),
    Op.LOAD1: (1, 0), Op.STORE1: (2, -2), Op.MEMCPY: (3, -3),
    Op.NEG: (1, 0), Op.NOT: (1, 0),
    Op.JMP: (0, 0), Op.JZ: (1, -1), Op.JNZ: (1, -1),
}
for _op in BINARY_ALU:
    _STACK_EFFECT[_op] = (2, -1)


def _effect(ins: Instr) -> tuple[int, int]:
    """(operands required, net stack delta) for one instruction.
    RTCALL pops ``imm2`` args and pushes one result."""
    if ins.op == Op.RTCALL:
        return ins.imm2, 1 - ins.imm2
    return _STACK_EFFECT[ins.op]

#: (data, length) prefix of the 24-byte slice descriptor (runtime ABI).
_DESC2 = struct.Struct("<qq")

_M64 = 18446744073709551615          # (1 << 64) - 1
_S63 = 9223372036854775808           # 1 << 63
_W64 = 18446744073709551616          # 1 << 64

#: Wrapping binary ALU ops -> Python expression over ``a``/``b``.
_ALU_EXPR = {
    Op.ADD: "a + b", Op.SUB: "a - b", Op.MUL: "a * b",
    Op.AND: "a & b", Op.OR: "a | b", Op.XOR: "a ^ b",
    Op.SHL: "a << (b & 63)", Op.SHR: f"(a & {_M64}) >> (b & 63)",
}
#: Comparison ops -> Python operator.
_CMP_EXPR = {Op.EQ: "==", Op.NE: "!=", Op.LT: "<",
             Op.LE: "<=", Op.GT: ">", Op.GE: ">="}


class Region:
    """One compileable region.

    ``groups`` mirrors the interpreter's dispatch grouping: one entry
    per code-dict dispatch, ``(op_counts slot, start index, arch
    count)``.  A fused pair is one group of arch count 2.

    ``loop`` marks a region whose terminator branches back to its own
    entry with a net stack delta of zero: such regions compile to a
    Python ``while`` loop retiring many iterations per call (the entry
    depth guard then holds for every iteration).  A loop body may
    contain conditional *side exits* — JZ/JNZ whose taken edge leaves
    the trace (``exits`` lists their instruction indices, in emission
    order); straight-line regions never do.
    """

    __slots__ = ("entry", "instrs", "groups", "length", "min_depth",
                 "loop", "exits")

    def __init__(self, entry: int, instrs: list[Instr],
                 groups: list[tuple[int, int, int]], loop: bool = False):
        self.entry = entry
        self.instrs = instrs
        self.groups = groups
        self.length = len(instrs)
        self.min_depth = _min_depth(instrs)
        self.loop = loop
        self.exits = [i for i, ins in enumerate(instrs[:-1])
                      if ins.op in (Op.JZ, Op.JNZ)] if loop else []

    def exit_tables(self) -> list[tuple[int, tuple, int]]:
        """Per side exit, the accounting constants for a pass that left
        through it: (architectural instructions retired, ((op_counts
        slot, bump), ...) for the retired dispatch groups, prevalidated
        locals among them).  Indexed by the exit's order in the body —
        the ``px`` the generated code selects."""
        tables = []
        for idx in self.exits:
            slot_counts: dict[int, int] = {}
            arch = 0
            end = 0
            for slot, start, garch in self.groups:
                if start > idx:
                    break
                slot_counts[slot] = slot_counts.get(slot, 0) + 1
                arch += garch
                end = start + garch
            n_local = sum(1 for ins in self.instrs[:end]
                          if ins.op in (Op.LOADL, Op.STOREL))
            tables.append((arch, tuple(sorted(slot_counts.items())),
                           n_local))
        return tables


class JitEntry:
    """Placed in the interpreter's code dict at a region's entry pc.

    ``op`` is :data:`JIT_OP` so the slice loop recognizes it with one
    comparison; ``orig`` is the displaced Instr/FusedInstr, dispatched
    whenever the region cannot run compiled (cold, guard failure, or
    budget/depth deopt)."""

    __slots__ = ("op", "orig", "region", "length", "min_depth",
                 "count", "fn")

    def __init__(self, orig, region: Region):
        self.op = JIT_OP
        self.orig = orig
        self.region = region
        self.length = region.length
        self.min_depth = region.min_depth
        self.count = 0
        self.fn = None


def _min_depth(instrs: list[Instr]) -> int:
    """Operand-stack depth the region needs on entry so that no pop can
    underflow inside generated code (which uses bare ``list.pop``)."""
    depth = 0
    required = 0
    for ins in instrs:
        need, delta = _effect(ins)
        if need - depth > required:
            required = need - depth
        depth += delta
    return required


# -- region discovery ---------------------------------------------------------


def discover_regions(base: int, instrs: list[Instr],
                     code: dict) -> list[Region]:
    """Find compileable regions in a freshly registered section.

    Leaders are the section start, every in-section branch/call target,
    and every successor of a non-straight-line op; a region runs from a
    leader along the code dict's actual dispatch groups (so fusion
    decisions are honored) until a terminator, a non-simple op, a page
    boundary, or :data:`JIT_MAX_LEN`.  Called before any
    :class:`JitEntry` is installed, so ``code`` holds only
    Instr/FusedInstr objects here.
    """
    n = len(instrs)
    limit = base + n * INSTR_SIZE
    leaders = {0}
    for i, ins in enumerate(instrs):
        op = ins.op
        if op in _TERM or op == Op.CALL:
            target = ins.imm1
            if isinstance(target, int) and base <= target < limit \
                    and (target - base) % INSTR_SIZE == 0:
                leaders.add((target - base) // INSTR_SIZE)
            if op != Op.CALL:
                leaders.add(i + 1)
        elif op not in _SIMPLE:
            leaders.add(i + 1)
    regions = []
    for start in sorted(leaders):
        if start >= n:
            continue
        region = _walk_region(base, instrs, code, start)
        if region is not None:
            regions.append(region)
    return regions


def _walk_region(base: int, instrs: list[Instr], code: dict,
                 start: int) -> Region | None:
    """Walk forward from a leader, preferring a *loop* region.

    The first pass walks past conditional branches (candidate side
    exits) looking for a branch back to the entry; if it finds one and
    the body's net stack delta is zero, the region compiles as a loop.
    Otherwise the straight-line grammar applies: the region ends at the
    first branch (inclusive), non-simple op, page boundary, or length
    cap."""
    entry = base + start * INSTR_SIZE
    groups, end, back = _walk(base, instrs, code, start, seek_loop=True)
    if back and end - start >= JIT_MIN_LEN and \
            sum(_effect(ins)[1] for ins in instrs[start:end]) == 0:
        return Region(entry, instrs[start:end], groups, loop=True)
    groups, end, _back = _walk(base, instrs, code, start, seek_loop=False)
    if end - start < JIT_MIN_LEN:
        return None
    return Region(entry, instrs[start:end], groups)


def _walk(base: int, instrs: list[Instr], code: dict, start: int,
          seek_loop: bool) -> tuple[list, int, bool]:
    """One forward walk along dispatch groups.  Returns (groups, end
    index, found-back-edge).  With ``seek_loop`` a JZ/JNZ that does not
    target the entry is a side exit and the walk continues; without it
    any branch terminates the region."""
    n = len(instrs)
    entry = base + start * INSTR_SIZE
    page0 = entry >> PAGE_SHIFT
    groups: list[tuple[int, int, int]] = []
    i = start
    back = False
    while i < n and (i - start) < JIT_MAX_LEN:
        pc = base + i * INSTR_SIZE
        if pc >> PAGE_SHIFT != page0:
            break
        op = instrs[i].op
        if op in _TERM:
            groups.append((int(op), i - start, 1))
            i += 1
            if op == Op.JMP or instrs[i - 1].imm1 == entry:
                back = instrs[i - 1].imm1 == entry
                break
            if not seek_loop:
                break
            continue
        if op == Op.RTCALL and instrs[i].imm1 in _RT_MEMBER:
            groups.append((int(op), i - start, 1))
            i += 1
            continue
        if op not in _SIMPLE:
            break
        obj = code.get(pc)
        if obj is not None and obj.op >= FUSED_BASE and i + 1 < n:
            # A fused pair is one dispatch group; its second element is
            # always simple or a branch (see FUSED_PAIRS).
            second = instrs[i + 1]
            groups.append((obj.op, i - start, 2))
            i += 2
            if second.op in _TERM:
                if second.op == Op.JMP or second.imm1 == entry:
                    back = second.imm1 == entry
                    break
                if not seek_loop:
                    break
        else:
            groups.append((int(op), i - start, 1))
            i += 1
    return groups, i, back


# -- the compiler -------------------------------------------------------------


class JitCompiler:
    """Region discovery, warm-up counting, codegen, and the code cache.

    One per :class:`~repro.isa.interp.Interpreter` (when its ``jit``
    switch is on).  The cache key is ``(entry pc, generation)``; a
    :meth:`flush` — wired to quarantine trips and available to any
    policy-edit site — bumps the generation, so traces compiled before
    an enforcement change can never be re-entered.
    """

    def __init__(self, interp, threshold: int = 8):
        self.interp = interp
        self.threshold = max(1, int(threshold))
        #: entry pc -> JitEntry (all installed entries, hot or cold).
        self.entries: dict[int, JitEntry] = {}
        #: (entry pc, generation) -> compiled function.
        self.cache: dict[tuple[int, int], object] = {}
        self.gen = 0

    def register(self, base: int, instrs: list[Instr]) -> None:
        """Discover regions in a just-registered section and install
        their entries (called by ``register_code`` after fusion)."""
        code = self.interp.code
        for region in discover_regions(base, instrs, code):
            orig = code[region.entry]
            if isinstance(orig, JitEntry):  # re-registration
                orig = orig.orig
            entry = JitEntry(orig, region)
            self.entries[region.entry] = entry
            code[region.entry] = entry

    def warm(self, entry: JitEntry) -> None:
        """Count one interpreted execution of a cold region; compile at
        the threshold."""
        entry.count += 1
        if entry.count >= self.threshold:
            self.compile_entry(entry)

    def compile_entry(self, entry: JitEntry) -> None:
        key = (entry.region.entry, self.gen)
        fn = self.cache.get(key)
        if fn is None:
            profiled = self.interp.profiler is not None
            fn = compile_region(entry.region, profiled)
            self.cache[key] = fn
            self.interp.perf.jit_traces_compiled += 1
        entry.fn = fn

    def flush(self) -> None:
        """Invalidate every compiled trace (quarantine / policy edit).

        Entries stay installed but cold; re-warming recompiles under
        the new generation."""
        self.gen += 1
        self.cache.clear()
        for entry in self.entries.values():
            entry.fn = None
            entry.count = 0
        self.interp.perf.jit_flushes += 1


# -- codegen ------------------------------------------------------------------

#: Process-global compiled-trace cache, keyed by generated source.
#: Machines built from the same image discover identical regions and
#: generate byte-identical source, so the expensive ``compile`` step is
#: paid once per process instead of once per machine.  Traces carry no
#: per-machine state — everything reaches them through their arguments
#: — so the function objects are safely shareable.  (Per-machine
#: invalidation still works: ``JitCompiler.flush`` drops the machine's
#: *entry* cache; re-warming just re-links the shared function.)
_COMPILED: dict = {}
_COMPILED_MAX = 4096


def compile_region(region: Region, profiled: bool):
    """Generate and compile the region's Python function.

    The function has the signature ``fn(interp, cpu, left) -> int``:
    the return value is the number of architectural instructions
    retired (pc, clock, stack, and counters all updated) — one region
    length for a straight-line trace, any multiple of it for a loop
    trace, which keeps iterating while ``left`` (the remaining slice
    budget) allows a full pass.  ``0`` means an entry guard failed and
    nothing observable happened (the interpreter runs the region
    instead)."""
    source = gen_source(region, profiled)
    fn = _COMPILED.get(source)
    if fn is not None:
        return fn
    namespace = {
        "Fault": Fault,
        "unpack_from": _WORD.unpack_from,
        "pack_into": _UWORD.pack_into,
        "w64": wrap64,
        "desc2": _DESC2.unpack_from,
        "RTD": _runtime_dispatch(),
        # Identical source implies identical pcs and hence identical
        # exit tables, so caching the closed-over _EXITS is sound.
        "_EXITS": tuple(region.exit_tables()),
    }
    code = compile(source, f"<jit:{region.entry:#x}>", "exec")
    exec(code, namespace)
    fn = namespace["_trace"]
    fn.__jit_source__ = source  # for tests / debugging
    if len(_COMPILED) >= _COMPILED_MAX:
        _COMPILED.clear()
    _COMPILED[source] = fn
    return fn


def gen_source(region: Region, profiled: bool) -> str:
    """Emit the region's Python source (see :func:`compile_region`).

    Simulated time accumulates in a local ``now`` (the same individual
    float adds in the same order, so the value is bit-identical) and is
    stored back to ``clock.now_ns`` at every point something else can
    observe it: before any MMU helper that charges the clock itself,
    before a profiler drain, in the fault hook, and at the epilogue.
    """
    instrs = region.instrs
    entry = region.entry
    loop = region.loop
    length = region.length

    uses_locals = any(i.op in (Op.LOADL, Op.STOREL) for i in instrs)
    local_reads = any(i.op == Op.LOADL for i in instrs)
    local_writes = any(i.op == Op.STOREL for i in instrs)
    uses_frame = uses_locals or any(i.op == Op.ADDRL for i in instrs)
    uses_word = any(i.op in (Op.LOAD, Op.STORE) for i in instrs)
    uses_byte_r = any(i.op == Op.LOAD1 for i in instrs)
    uses_byte_w = any(i.op == Op.STORE1 for i in instrs)
    uses_memcpy = any(i.op == Op.MEMCPY for i in instrs)
    uses_slice_r = any(i.op == Op.RTCALL and i.imm1 == _RT_SLICE_AT
                       for i in instrs)
    uses_slice_w = any(i.op == Op.RTCALL and i.imm1 == _RT_SLICE_PUT
                       for i in instrs)
    uses_slice = uses_slice_r or uses_slice_w
    uses_ctx = uses_locals or uses_word or uses_byte_r or uses_byte_w \
        or uses_memcpy or uses_slice
    uses_hoists = uses_locals or uses_word or uses_slice
    uses_guarded = any(i.op == Op.RTCALL and i.imm1 in _RT_GUARDED
                       for i in instrs)
    uses_pure_rt = any(i.op == Op.RTCALL and i.imm1 not in _RT_GUARDED
                       for i in instrs)
    uses_wfth = uses_word or uses_slice
    uses_pop = any((i.op == Op.RTCALL and
                    i.imm1 in (_RT_SLICE_AT, _RT_SLICE_PUT)) or
                   (i.op != Op.RTCALL and
                    (_STACK_EFFECT[i.op][0] > 0 or i.op == Op.DUP))
                   for i in instrs)
    uses_push = any(i.op not in (Op.NOP, Op.JMP, Op.JZ, Op.JNZ,
                                 Op.STOREL, Op.STORE, Op.STORE1,
                                 Op.MEMCPY, Op.DROP)
                    for i in instrs)

    # Prevalidated locals: every LOADL/STOREL in the region touches the
    # frame's locals area; when the whole accessed span lies on one
    # page whose r/w TLB entries validate (incl. PKRU) and no injector
    # is armed, each access is one struct op — the exact fast path
    # read_word/write_word would take, so word_fast/tlb_hits advance by
    # the same constants.
    local_offs = [8 * i.imm1 for i in instrs
                  if i.op in (Op.LOADL, Op.STOREL)]
    n_local = len(local_offs)

    lines = ["def _trace(interp, cpu, left):"]
    emit = lines.append
    emit("    ops = cpu.operands")
    emit("    clock = cpu.clock")
    if uses_ctx:
        emit("    mmu = interp.mmu")
        emit("    ctx = cpu.ctx")
    if uses_frame:
        emit("    fpb = cpu.fp + 16")
    if uses_hoists:
        emit("    table = ctx.page_table")
        emit("    tgen = table.gen")
        emit("    ept = ctx.ept")
        emit("    egen = 0 if ept is None else ept.gen")
        emit("    user = ctx.user")
        emit("    pkru = ctx.pkru")
        emit("    tget = ctx.tlb.get")
    if uses_locals:
        lo = min(local_offs)
        hi = max(local_offs)
        emit(f"    if (fpb + {lo}) >> {PAGE_SHIFT} "
             f"!= (fpb + {hi + 7}) >> {PAGE_SHIFT} "
             "or mmu.inject is not None:")
        emit("        return 0")
        emit(f"    pg4 = ((fpb + {lo}) >> {PAGE_SHIFT}) * 4")
        if local_reads:
            _emit_preval(emit, "pg4", "sfr", read=True)
        if local_writes:
            _emit_preval(emit, "pg4 + 1", "sfw", read=False)
        emit(f"    sb = fpb - ((pg4 >> 2) << {PAGE_SHIFT})")
    if uses_wfth:
        emit("    inj = mmu.inject")
        emit("    acc = mmu._access")
        emit("    wf = 0")
        emit("    th = 0")
    if uses_word or uses_slice_r:
        emit("    rword = mmu.read_word")
    if uses_word or uses_slice_w:
        emit("    wword = mmu.write_word")
    if uses_byte_r:
        emit("    rbyte = mmu.read_byte")
    if uses_byte_w:
        emit("    wbyte = mmu.write_byte")
    if uses_memcpy:
        emit("    mcpy = mmu.memcpy")
    if uses_guarded:
        emit("    dor = interp._do_rtcall")
        emit("    gua = interp._guarded")
    if uses_pure_rt:
        # Unwired handler -> deopt; the interpreter raises the
        # canonical Fault("exec", "no runtime handler wired").
        emit("    dsp = cpu.rtcall_handler")
        emit("    if dsp is None:")
        emit("        return 0")
        if uses_slice:
            # The open-coded SLICE_AT/PUT paths assume the stock
            # Runtime semantics; a custom handler deopts the region.
            emit("    if getattr(dsp, '__func__', None) is not RTD:")
            emit("        return 0")
    if profiled:
        emit("    prof = interp.profiler")
    if uses_push:
        emit("    push = ops.append")
    if uses_pop:
        emit("    pop = ops.pop")
    emit("    now = clock.now_ns")
    if loop:
        emit("    n = 0")
        if region.exits:
            emit("    px = -1")
    emit("    try:")
    ind = "            " if loop else "        "
    if loop:
        emit("        while True:")

    group_bounds = {start + arch for _slot, start, arch in region.groups}
    group_pcs = {start: entry + start * INSTR_SIZE
                 for _slot, start, arch in region.groups}

    def drain(idx: int, indent: str) -> None:
        # Retire-boundary drain with the *group-start* pc, exactly as
        # _run_slice_profiled drains with the pre-dispatch pc.
        gstart = max(s for s in group_pcs if s <= idx)
        emit(f"{indent}if prof.next_due <= now:")
        emit(f"{indent}    clock.now_ns = now")
        emit(f"{indent}    prof.drain_retire({group_pcs[gstart]})")

    body = instrs[:-1] if loop else instrs
    for idx, ins in enumerate(body):
        if loop and ins.op in (Op.JZ, Op.JNZ):
            # Side exit: the taken edge leaves the trace (px selects
            # this exit's accounting in the epilogue); the fall-through
            # stays on trace.  The drain runs on both paths — the
            # interpreter drains after the dispatch either way.
            taken = "== 0" if ins.op == Op.JZ else "!= 0"
            j = region.exits.index(idx)
            emit(f"{ind}now += {COSTS.INSN_BRANCH!r}")
            emit(f"{ind}if pop() {taken}:")
            emit(f"{ind}    cpu.pc = {ins.imm1}")
            emit(f"{ind}    px = {j}")
            if profiled:
                drain(idx, ind + "    ")
            emit(f"{ind}    break")
            if profiled:
                drain(idx, ind)
            continue
        _emit_instr(emit, ins, entry + idx * INSTR_SIZE, ind)
        if profiled and (idx + 1) in group_bounds:
            drain(idx, ind)

    if loop:
        # Terminator: the taken side is the back edge.  The semantic
        # action (charge, condition pop, pc on exit) happens first, the
        # drain after it, exactly as one interpreted dispatch; cpu.pc is
        # written only on exit — nothing observes it mid-loop, and every
        # faultable op syncs its own pc first.
        term = instrs[-1]
        tidx = length - 1
        tpc = entry + tidx * INSTR_SIZE
        emit(f"{ind}now += {COSTS.INSN_BRANCH!r}")
        if term.op == Op.JMP:
            emit(f"{ind}n += {length}")
            if profiled:
                drain(tidx, ind)
            emit(f"{ind}if left - n < {length}:")
            emit(f"{ind}    cpu.pc = {entry}")
            emit(f"{ind}    break")
        else:
            taken = "== 0" if term.op == Op.JZ else "!= 0"
            emit(f"{ind}if pop() {taken}:")
            emit(f"{ind}    n += {length}")
            if profiled:
                drain(tidx, ind + "    ")
            emit(f"{ind}    if left - n < {length}:")
            emit(f"{ind}        cpu.pc = {entry}")
            emit(f"{ind}        break")
            emit(f"{ind}else:")
            emit(f"{ind}    cpu.pc = {tpc + INSTR_SIZE}")
            emit(f"{ind}    n += {length}")
            if profiled:
                drain(tidx, ind + "    ")
            emit(f"{ind}    break")
    elif instrs[-1].op not in _TERM:
        emit(f"{ind}cpu.pc = {entry + length * INSTR_SIZE}")

    # Fault hook: the clock local is authoritative unless the raise
    # came from inside an MMU helper that charged after our last sync
    # (then clock is already ahead — charges only ever advance time).
    emit("    except BaseException:")
    emit("        if now > clock.now_ns:")
    emit("            clock.now_ns = now")
    if uses_wfth:
        emit("        perf = interp.perf")
        emit("        perf.word_fast += wf")
        emit("        perf.tlb_hits += th")
    emit(f"        interp._jit_fault(cpu, {entry}, "
         f"{'n' if loop else 0})")
    emit("        raise")

    # Success epilogue: batch the counters the interpreter would have
    # bumped one dispatch at a time (integer adds commute).
    emit("    clock.now_ns = now")
    emit("    perf = interp.perf")
    emit("    oc = perf.op_counts")
    slot_counts: dict[int, int] = {}
    for slot, _start, _arch in region.groups:
        slot_counts[slot] = slot_counts.get(slot, 0) + 1
    if loop:
        emit(f"    it = n // {length}")
        for slot in sorted(slot_counts):
            mult = "it" if slot_counts[slot] == 1 \
                else f"{slot_counts[slot]} * it"
            emit(f"    oc[{slot}] += {mult}")
        if region.exits:
            # A pass that left through side exit px retired that exit's
            # prefix: its arch count, dispatch groups, and prevalidated
            # locals come from the per-exit constant table.
            if n_local:
                emit("    xl = 0")
            emit("    if px >= 0:")
            emit("        xa, xs" + (", xl" if n_local else ", _xl") +
                 " = _EXITS[px]")
            emit("        n += xa")
            emit("        for s2, c2 in xs:")
            emit("            oc[s2] += c2")
        xl = " + xl" if (region.exits and n_local) else ""
        if uses_wfth and n_local:
            emit(f"    perf.word_fast += wf + {n_local} * it{xl}")
            emit(f"    perf.tlb_hits += th + {n_local} * it{xl}")
        elif uses_wfth:
            emit("    perf.word_fast += wf")
            emit("    perf.tlb_hits += th")
        elif n_local:
            emit(f"    perf.word_fast += {n_local} * it{xl}")
            emit(f"    perf.tlb_hits += {n_local} * it{xl}")
        emit("    perf.jit_trace_executions += 1")
        emit("    perf.jit_insns += n")
        emit("    return n")
    else:
        for slot in sorted(slot_counts):
            emit(f"    oc[{slot}] += {slot_counts[slot]}")
        if uses_wfth and n_local:
            emit(f"    perf.word_fast += wf + {n_local}")
            emit(f"    perf.tlb_hits += th + {n_local}")
        elif uses_wfth:
            emit("    perf.word_fast += wf")
            emit("    perf.tlb_hits += th")
        elif n_local:
            emit(f"    perf.word_fast += {n_local}")
            emit(f"    perf.tlb_hits += {n_local}")
        emit("    perf.jit_trace_executions += 1")
        emit(f"    perf.jit_insns += {length}")
        emit(f"    return {length}")
    return "\n".join(lines) + "\n"


def _emit_preval(emit, key: str, frame_var: str, read: bool) -> None:
    """Entry guard validating one locals-page TLB entry, mirroring the
    hit conditions of read_word/write_word (including per-access PKRU);
    any mismatch deopts to the interpreter, which owns the slow path."""
    emit(f"    e = tget({key})")
    emit("    if e is None or e[2] is not table or e[3] != tgen \\")
    emit("            or e[4] is not ept \\")
    emit("            or (ept is not None and e[5] != egen):")
    emit("        return False")
    emit("    p = e[0]")
    emit("    if not p.user and user:")
    emit("        return False")
    if read:
        emit("    if pkru is not None and user "
             "and (pkru >> (2 * p.pkey)) & 1:")
    else:
        emit("    if pkru is not None and user "
             "and (pkru >> (2 * p.pkey)) & 3 != 0:")
    emit("        return False")
    emit(f"    {frame_var} = e[1]")


def _emit_instr(emit, ins: Instr, pc: int, I: str) -> None:
    """Emit one architectural instruction at indent ``I`` (inside try).

    Simulated charges are individual float adds, in the interpreter's
    order, on the local ``now``; ``cpu.pc`` is synced before anything
    that can fault so the fault observes the interpreter's exact state,
    and ``clock.now_ns`` is synced around MMU helpers that charge the
    clock themselves (re-read after, since they advanced it)."""
    op = ins.op
    if op == Op.PUSH:
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}push({ins.imm1!r})")
    elif op == Op.LOADL:
        emit(f"{I}now += {COSTS.INSN_MEM!r}")
        emit(f"{I}push(unpack_from(sfr, sb + {8 * ins.imm1})[0])")
    elif op == Op.STOREL:
        emit(f"{I}now += {COSTS.INSN_MEM!r}")
        emit(f"{I}pack_into(sfw, sb + {8 * ins.imm1}, pop() & {_M64})")
    elif op == Op.ADDRL:
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}push(fpb + {8 * ins.imm1})")
    elif op == Op.LOAD:
        emit(f"{I}cpu.pc = {pc}")
        emit(f"{I}now += {COSTS.INSN_MEM!r}")
        emit(f"{I}a = pop()")
        _emit_word_access(emit, read=True, I=I)
    elif op == Op.STORE:
        emit(f"{I}cpu.pc = {pc}")
        emit(f"{I}now += {COSTS.INSN_MEM!r}")
        emit(f"{I}v = pop()")
        emit(f"{I}a = pop()")
        _emit_word_access(emit, read=False, I=I)
    elif op == Op.LOAD1:
        emit(f"{I}cpu.pc = {pc}")
        emit(f"{I}clock.now_ns = now")
        emit(f"{I}push(rbyte(ctx, pop()))")
        emit(f"{I}now = clock.now_ns")
    elif op == Op.STORE1:
        emit(f"{I}cpu.pc = {pc}")
        emit(f"{I}v = pop()")
        emit(f"{I}a = pop()")
        emit(f"{I}clock.now_ns = now")
        emit(f"{I}wbyte(ctx, a, v)")
        emit(f"{I}now = clock.now_ns")
    elif op == Op.MEMCPY:
        emit(f"{I}cpu.pc = {pc}")
        emit(f"{I}n2 = pop()")
        emit(f"{I}s = pop()")
        emit(f"{I}d = pop()")
        emit(f"{I}if n2 < 0:")
        emit(f"{I}    raise Fault('arith', 'negative MEMCPY length')")
        emit(f"{I}clock.now_ns = now")
        emit(f"{I}mcpy(ctx, d, s, n2)")
        emit(f"{I}now = clock.now_ns")
    elif op == Op.DROP:
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}pop()")
    elif op == Op.DUP:
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}push(ops[-1])")
    elif op == Op.SWAP:
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}b = pop()")
        emit(f"{I}a = pop()")
        emit(f"{I}push(b)")
        emit(f"{I}push(a)")
    elif op == Op.NEG:
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}v = (-pop()) & {_M64}")
        emit(f"{I}push(v - {_W64} if v >= {_S63} else v)")
    elif op == Op.NOT:
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}push(1 if pop() == 0 else 0)")
    elif op == Op.RTCALL:
        emit(f"{I}cpu.pc = {pc}")
        if ins.imm1 in _RT_GUARDED:
            # CHAN_SEND/RECV keep _guarded's WouldBlock stack restore
            # around the real _do_rtcall, exactly as _op_rtcall does.
            emit(f"{I}clock.now_ns = now")
            emit(f"{I}gua(cpu, dor, {ins.imm1}, {ins.imm2})")
        elif ins.imm1 in (_RT_SLICE_AT, _RT_SLICE_PUT):
            _emit_slice_access(emit, ins, I)
        else:
            # Pure services inline _do_rtcall's body: charge, popn,
            # dispatch, wrap-push — same effect order, one less frame.
            emit(f"{I}now += {COSTS.RTCALL!r}")
            if ins.imm2:
                emit(f"{I}a = tuple(ops[-{ins.imm2}:])")
                emit(f"{I}del ops[-{ins.imm2}:]")
            else:
                emit(f"{I}a = ()")
            emit(f"{I}clock.now_ns = now")
            emit(f"{I}push(w64(dsp(cpu, {ins.imm1}, a)))")
        emit(f"{I}now = clock.now_ns")
    elif op == Op.NOP:
        emit(f"{I}now += {COSTS.INSN!r}")
    elif op in _CMP_EXPR:
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}b = pop()")
        emit(f"{I}a = pop()")
        emit(f"{I}push(1 if a {_CMP_EXPR[op]} b else 0)")
    elif op in (Op.DIV, Op.MOD):
        kind = "divide" if op == Op.DIV else "modulo"
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}b = pop()")
        emit(f"{I}a = pop()")
        emit(f"{I}if b == 0:")
        emit(f"{I}    cpu.pc = {pc}")
        emit(f"{I}    raise Fault('arith', 'integer {kind} by zero')")
        emit(f"{I}q = a // b")
        emit(f"{I}if q < 0 and q * b != a:")
        emit(f"{I}    q += 1")
        if op == Op.DIV:
            emit(f"{I}v = q & {_M64}")
        else:
            emit(f"{I}v = (a - q * b) & {_M64}")
        emit(f"{I}push(v - {_W64} if v >= {_S63} else v)")
    elif op in _ALU_EXPR:
        emit(f"{I}now += {COSTS.INSN!r}")
        emit(f"{I}b = pop()")
        emit(f"{I}a = pop()")
        emit(f"{I}v = ({_ALU_EXPR[op]}) & {_M64}")
        emit(f"{I}push(v - {_W64} if v >= {_S63} else v)")
    elif op == Op.JMP:
        emit(f"{I}now += {COSTS.INSN_BRANCH!r}")
        emit(f"{I}cpu.pc = {ins.imm1}")
    elif op == Op.JZ:
        emit(f"{I}now += {COSTS.INSN_BRANCH!r}")
        emit(f"{I}cpu.pc = {ins.imm1} if pop() == 0 "
             f"else {pc + INSTR_SIZE}")
    elif op == Op.JNZ:
        emit(f"{I}now += {COSTS.INSN_BRANCH!r}")
        emit(f"{I}cpu.pc = {pc + INSTR_SIZE} if pop() == 0 "
             f"else {ins.imm1}")
    else:  # pragma: no cover - discovery admits only the ops above
        raise Fault("exec", f"JIT cannot compile op {op!r}")


def _emit_slice_access(emit, ins: Instr, I: str) -> None:
    """Open-coded SLICE_AT / SLICE_PUT (the stock ``Runtime`` handlers
    flattened into the trace).  Effect order mirrors ``_do_rtcall`` +
    ``_rt_slice_at``/``_rt_slice_put`` exactly: charge RTCALL, pop the
    args, read the descriptor uncharged through the TLB (hit -> one
    ``tlb_hits``; anything else -> ``_access``), bounds-check with the
    canonical fault text, then one charged element access with the
    word/byte helpers' own fast paths inlined (identical counters:
    ``word_fast``/``tlb_hits`` on the word path, ``tlb_hits`` on the
    byte path, ``_access`` fallback, ``word_slow`` via the real helper
    for a page-spanning word).  Injector armed or a page-spanning
    descriptor falls back to the generic dispatch call, which is the
    interpreter's own path."""
    put = ins.imm1 == _RT_SLICE_PUT
    emit(f"{I}now += {COSTS.RTCALL!r}")
    if put:
        emit(f"{I}v2 = pop()")
    emit(f"{I}i2 = pop()")
    emit(f"{I}e2 = pop()")
    emit(f"{I}d2 = pop()")
    emit(f"{I}o2 = d2 & {PAGE_MASK}")
    emit(f"{I}if inj is None and o2 <= {PAGE_SIZE - 24}:")
    emit(f"{I}    t2 = tget((d2 >> {PAGE_SHIFT}) * 4)")
    emit(f"{I}    if t2 is not None and t2[2] is table and t2[3] == tgen "
         f"and t2[4] is ept and (ept is None or t2[5] == egen) "
         f"and (t2[0].user or not user) and (pkru is None or not user "
         f"or not (pkru >> (2 * t2[0].pkey)) & 1):")
    emit(f"{I}        th += 1")
    emit(f"{I}        f2 = t2[1]")
    emit(f"{I}    else:")
    emit(f"{I}        f2 = acc(ctx, d2, 'r')[1]")
    emit(f"{I}    da, ln = desc2(f2, o2)")
    emit(f"{I}    if not 0 <= i2 < ln:")
    emit(f"{I}        raise Fault('arith', f'slice index {{i2}} "
         f"out of range [0,{{ln}})')")
    emit(f"{I}    now += {COSTS.INSN_MEM!r}")
    key = "(a2 >> 12) * 4" if not put else "(a2 >> 12) * 4 + 1"
    pkey_ok = ("not (pkru >> (2 * p2.pkey)) & 1" if not put
               else "(pkru >> (2 * p2.pkey)) & 3 == 0")
    probe = (f"t2 is not None and t2[2] is table and t2[3] == tgen "
             f"and t2[4] is ept and (ept is None or t2[5] == egen) "
             f"and ((p2 := t2[0]).user or not user) "
             f"and (pkru is None or not user or {pkey_ok})")
    kind = "'w'" if put else "'r'"
    emit(f"{I}    if e2 == 1:")
    emit(f"{I}        a2 = da + i2")
    emit(f"{I}        t2 = tget({key})")
    emit(f"{I}        if {probe}:")
    emit(f"{I}            th += 1")
    if put:
        emit(f"{I}            t2[1][a2 & {PAGE_MASK}] = v2 & 255")
        emit(f"{I}        else:")
        emit(f"{I}            acc(ctx, a2, 'w')[1][a2 & {PAGE_MASK}]"
             f" = v2 & 255")
    else:
        emit(f"{I}            push(t2[1][a2 & {PAGE_MASK}])")
        emit(f"{I}        else:")
        emit(f"{I}            push(acc(ctx, a2, 'r')[1][a2 & {PAGE_MASK}])")
    emit(f"{I}        clock.now_ns = now")
    emit(f"{I}    else:")
    emit(f"{I}        a2 = da + i2 * e2")
    emit(f"{I}        o2 = a2 & {PAGE_MASK}")
    emit(f"{I}        if o2 <= {PAGE_SIZE - 8}:")
    emit(f"{I}            wf += 1")
    emit(f"{I}            t2 = tget({key})")
    emit(f"{I}            if {probe}:")
    emit(f"{I}                th += 1")
    if put:
        emit(f"{I}                pack_into(t2[1], o2, v2 & {_M64})")
        emit(f"{I}            else:")
        emit(f"{I}                pack_into(acc(ctx, a2, {kind})[1], o2, "
             f"v2 & {_M64})")
    else:
        emit(f"{I}                push(unpack_from(t2[1], o2)[0])")
        emit(f"{I}            else:")
        emit(f"{I}                push(unpack_from(acc(ctx, a2, {kind})[1], "
             f"o2)[0])")
    emit(f"{I}            clock.now_ns = now")
    emit(f"{I}        else:")
    emit(f"{I}            clock.now_ns = now")
    if put:
        emit(f"{I}            wword(ctx, a2, v2, False)")
    else:
        emit(f"{I}            push(rword(ctx, a2, False))")
    if put:
        emit(f"{I}    push(0)")
    emit(f"{I}else:")
    emit(f"{I}    clock.now_ns = now")
    args = "(d2, e2, i2, v2)" if put else "(d2, e2, i2)"
    emit(f"{I}    push(w64(dsp(cpu, {ins.imm1}, {args})))")


def _emit_word_access(emit, read: bool, I: str) -> None:
    """Inline the read_word/write_word fast path for a dynamic address
    ``a`` (value ``v`` for stores): same fit check, same TLB-hit
    validation and per-access PKRU test, same ``_access`` fallback that
    owns every fault/trace/counter slow path (it never touches the
    clock, so no sync is needed — the fault hook covers a raise), same
    page-spanning fallback into the real helper (already charged)."""
    kind = "'r'" if read else "'w'"
    key = "(a >> 12) * 4" if read else "(a >> 12) * 4 + 1"
    pkey_ok = ("not (pkru >> (2 * p.pkey)) & 1" if read
               else "(pkru >> (2 * p.pkey)) & 3 == 0")
    emit(f"{I}o = a & {(1 << PAGE_SHIFT) - 1}")
    emit(f"{I}if o <= {(1 << PAGE_SHIFT) - 8}:")
    emit(f"{I}    wf += 1")
    emit(f"{I}    e = tget({key})")
    emit(f"{I}    if (inj is None and e is not None and e[2] is table")
    emit(f"{I}            and e[3] == tgen and e[4] is ept")
    emit(f"{I}            and (ept is None or e[5] == egen)")
    emit(f"{I}            and ((p := e[0]).user or not user)")
    emit(f"{I}            and (pkru is None or not user")
    emit(f"{I}                 or {pkey_ok})):")
    emit(f"{I}        th += 1")
    if read:
        emit(f"{I}        push(unpack_from(e[1], o)[0])")
        emit(f"{I}    else:")
        emit(f"{I}        push(unpack_from(acc(ctx, a, {kind})[1], o)[0])")
        emit(f"{I}else:")
        emit(f"{I}    push(rword(ctx, a, False))")
    else:
        emit(f"{I}        pack_into(e[1], o, v & {_M64})")
        emit(f"{I}    else:")
        emit(f"{I}        pack_into(acc(ctx, a, {kind})[1], o, v & {_M64})")
        emit(f"{I}else:")
        emit(f"{I}    wword(ctx, a, v, False)")
