"""The assembled machine: hardware + OS + LitterBox + runtime + program.

A :class:`Machine` loads one linked :class:`~repro.image.elf.ElfImage`
and runs it under one of the paper's three configurations:

* ``baseline`` — vanilla closures, no enforcement;
* ``mpk``      — LitterBox over Intel MPK (``LBMPK``);
* ``vtx``      — LitterBox over Intel VT-x / KVM (``LBVTX``);
* ``lwc``      — LitterBox over light-weight contexts, the §8
  hardware-agnostic alternative backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backends import Backend, BaselineBackend
from repro.core.enclosure import LITTERBOX_SUPER
from repro.core.lb_mpk import MPKBackend
from repro.core.lb_vtx import VTXBackend
from repro.core.litterbox import LitterBox
from repro.errors import ConfigError, Fault
from repro.hw.clock import COSTS, SimClock
from repro.hw.cpu import CPU
from repro.hw.mmu import MMU, TranslationContext
from repro.hw.mpk import PKRU_ALLOW_ALL
from repro.hw.pages import PAGE_SIZE
from repro.hw.pagetable import PageTable
from repro.hw.physmem import PhysicalMemory
from repro.image.elf import ElfImage
from repro.inject import FaultInjector
from repro.isa.interp import Interpreter
from repro.metrics import EnforcementMetrics, MetricsRegistry
from repro.perf import PerfStats
from repro.profiler import Profiler
from repro.isa.opcodes import Hook
from repro.os.kernel import Kernel
from repro.os.kvm import KVMDevice
from repro.os.seccomp import ArgRule
from repro.runtime.allocator import Allocator
from repro.runtime.channels import ChannelTable
from repro.runtime.runtime import Runtime, read_string
from repro.runtime.scheduler import RunResult, Scheduler
from repro.trace import Tracer


@dataclass
class MachineConfig:
    backend: str = "baseline"          # baseline | mpk | vtx | lwc
    #: Simulated CPU cores.  ``1`` is the historical single-core
    #: machine, bit-identical with every prior release; ``N > 1``
    #: builds N CPUs (each with a private TLB and PKRU) under one
    #: SimClock with a deterministic per-core virtual-time interleave,
    #: and turns on honest cross-core costs: every page-table or PKRU
    #: revocation charges TLB-shootdown IPIs against the remote cores.
    cores: int = 1
    virtualize_keys: bool = False      # libmpk-style ablation (LBMPK)
    arg_rules: list[ArgRule] | None = None  # §6.5 sysfilter extension
    trace: bool = False                # enforcement-event tracer
    #: What a fault inside an enclosure does: "abort" (paper §2.2),
    #: "kill-goroutine" (only the offending goroutine dies), or
    #: "quarantine" (kill + trip the enclosure's quarantine breaker).
    fault_policy: str = "abort"
    #: Fault-injection spec (see :mod:`repro.inject`); None disables.
    inject: str | None = None
    inject_seed: int = 0
    #: Contained faults an enclosure absorbs before quarantine trips
    #: (only meaningful under fault_policy="quarantine").
    quarantine_threshold: int = 1
    #: Supervised restarts per killed goroutine (0 = never respawn).
    restart_limit: int = 0
    #: Per-enclosure resource quotas (see :mod:`repro.quota`): a spec
    #: string like ``"*:steps=450000,spans=16"`` or a pre-parsed target
    #: map.  ``None`` (the default) leaves every metering hook a single
    #: ``is None`` test, keeping sim-ns bit-identical.
    quotas: str | dict | None = None
    # Wall-clock fast-path kill-switches (PR 4).  All three are
    # invisible to the cost model; they exist so the bit-identity test
    # suite can diff each fast path against its slow path.
    #: Load-time superinstruction peephole in the interpreter.
    fuse_superinstructions: bool = True
    #: LitterBox per-(goroutine, env) Prolog transition memo.
    transition_cache: bool = True
    #: Kernel (pkru, nr) -> seccomp verdict memo.
    verdict_cache: bool = True
    # Trace-JIT (PR 6): compile hot straight-line regions to generated
    # Python (see repro/isa/jit.py).  Wall-clock only, like the fast
    # paths above: every simulated value is bit-identical with the JIT
    # on or off, and jit=False restores pure interpretation exactly.
    jit: bool = True
    #: Interpreted entries of a region before it is compiled.
    jit_threshold: int = 8
    # Observability (PR 5).  Both are wall-clock-only like the tracer:
    # they charge no simulated cost, so sim-ns is bit-identical with
    # either on or off.
    #: Prometheus-style metrics registry over every enforcement point.
    metrics: bool = False
    #: Deterministic sim-time sampling profiler.
    profile: bool = False
    #: Sampling period of the profiler, in simulated nanoseconds.
    profile_period_ns: float = 1000.0
    # Request-scoped distributed tracing (repro.spans).  Same
    # wall-clock-only contract as the tracer/metrics/profiler: the
    # recorder never charges simulated time, and with ``spans=False``
    # every propagation hook is a single ``is None`` test.
    #: Attach a SpanRecorder to every propagation/enforcement point.
    spans: bool = False
    #: Seed for deterministic trace-id derivation (the load generator
    #: overrides this with its own seed per level).
    span_seed: int = 0
    #: Tail-sampling keep fraction for *healthy* traces; anomalous
    #: traces (faulted/shed/refused/reset/SLO-exceeded) always survive.
    span_sample: float = 1.0
    #: SLO latency threshold (sim ns) above which a trace is anomalous.
    span_slo_ns: float = 1_000_000.0
    #: Flight-recorder ring depth: last-N events kept per core.
    span_ring: int = 32

FAULT_POLICIES = ("abort", "kill-goroutine", "quarantine")


class Machine:
    """One simulated host running one program."""

    def __init__(self, image: ElfImage,
                 config: MachineConfig | str = "baseline"):
        if isinstance(config, str):
            config = MachineConfig(backend=config)
        if config.fault_policy not in FAULT_POLICIES:
            raise ConfigError(
                f"unknown fault_policy {config.fault_policy!r} "
                f"(choose from {', '.join(FAULT_POLICIES)})")
        if config.cores < 1:
            raise ConfigError(f"cores must be >= 1, got {config.cores}")
        self.config = config
        self.image = image
        self.clock = SimClock()
        #: Wall-clock observability counters (TLB, fetch, opcodes);
        #: shared by the MMU and interpreter, independent of SimClock.
        self.perf = PerfStats()
        #: Enforcement-event tracer (``None`` unless ``config.trace``);
        #: every hook site guards on ``is not None`` so the disabled
        #: path is a single attribute test.
        self.tracer = Tracer(self.clock) if config.trace else None
        #: Enforcement metrics (``None`` unless ``config.metrics``);
        #: same null-path contract as the tracer.
        self.metrics = None
        self.metrics_registry = None
        if config.metrics:
            self.metrics_registry = MetricsRegistry(
                const_labels={"backend": config.backend})
            self.metrics = EnforcementMetrics(self.metrics_registry)
            self.metrics_registry.gauge(
                "sim_time_ns",
                "Simulated nanoseconds elapsed on this machine's clock."
            ).set_function(lambda: self.clock.now_ns)
            self.metrics_registry.add_collector(
                lambda: self.metrics.sync_jit(self.perf))
        #: Sim-time sampling profiler (``None`` unless ``config.profile``).
        self.profiler = (Profiler(self.clock, config.profile_period_ns,
                                  backend=config.backend)
                         if config.profile else None)
        self.physmem = PhysicalMemory()
        self.mmu = MMU(self.physmem, self.clock, perf=self.perf)
        self.mmu.tracer = self.tracer
        self.kernel = Kernel(self.physmem, self.mmu, self.clock)
        self.kernel.tracer = self.tracer
        self.kernel.metrics = self.metrics
        self.kernel.profiler = self.profiler
        self.host_table = PageTable("host")
        self.kernel.host_table = self.host_table
        self.interp = Interpreter(self.mmu, self.clock,
                                  fusion=config.fuse_superinstructions,
                                  jit=config.jit,
                                  jit_threshold=config.jit_threshold)
        self.interp.profiler = self.profiler
        self.cpu = CPU(mmu=self.mmu, clock=self.clock)
        self.fault: Fault | None = None

        self._load_image()
        if self.profiler is not None:
            self.profiler.load_image(image)
            # The executing core's pc (core 0's on a one-core machine).
            self.profiler.pc_provider = (
                lambda: self.scheduler.current_core.cpu.pc)

        backend = self._make_backend(config)
        self.backend = backend
        self.litterbox = LitterBox(backend, self.kernel, self.mmu, self.clock)
        self.litterbox.tracer = self.tracer
        self.litterbox.metrics = self.metrics
        self.litterbox.profiler = self.profiler
        self.litterbox.jit_flush = self.interp.flush_jit
        self.litterbox.trusted_ctx = TranslationContext(
            page_table=self.host_table, pkru=None)

        pkru = PKRU_ALLOW_ALL if config.backend == "mpk" else None
        self.cpu.ctx = TranslationContext(page_table=self.host_table,
                                          pkru=pkru)
        self.cpu.guest_mode = config.backend == "vtx"

        self.litterbox.init(image)
        if config.backend == "vtx":
            vtx: VTXBackend = backend
            vtx.vm.tracer = self.tracer
            vtx.vm.metrics = self.metrics
            # Entering guest mode installs a new CR3 and the EPT: any
            # translations cached during loading are flushed.
            self.cpu.ctx.page_table = vtx.trusted_table
            self.cpu.ctx.ept = vtx.vm.vmcs.ept
            self.mmu.flush_tlb(self.cpu.ctx)

        # Further cores (SMP): each gets its own translation context —
        # a private software TLB and PKRU cell — starting from core 0's
        # boot state.  Core 0's CPU object and context are exactly the
        # historical single-core ones.
        self.cpus = [self.cpu]
        for _ in range(1, config.cores):
            cpu = CPU(mmu=self.mmu, clock=self.clock)
            cpu.guest_mode = self.cpu.guest_mode
            cpu.ctx = TranslationContext(
                page_table=self.cpu.ctx.page_table,
                pkru=self.cpu.ctx.pkru,
                ept=self.cpu.ctx.ept)
            self.cpus.append(cpu)

        # Runtime services.
        self.pkg_names = sorted(image.graph.names())
        self.allocator = Allocator(self.litterbox)
        self.scheduler = Scheduler(self.cpu, self.interp, self.litterbox,
                                   cpus=self.cpus)
        self.scheduler.tracer = self.tracer
        self.scheduler.profiler = self.profiler
        self.channels = ChannelTable(self.scheduler.wake)
        #: Request-span recorder (``None`` unless ``config.spans``);
        #: the same null-path contract as the tracer.
        self.spans = None
        if config.spans:
            from repro.spans import SpanRecorder
            spans = SpanRecorder(self.clock, seed=config.span_seed,
                                 sample=config.span_sample,
                                 slo_ns=config.span_slo_ns,
                                 cores=config.cores,
                                 ring=config.span_ring)
            spans.scheduler = self.scheduler
            spans.net = self.kernel.net
            self.spans = spans
            self.scheduler.spans = spans
            self.channels.spans = spans
            self.kernel.spans = spans
            self.kernel.net.spans = spans
            self.litterbox.spans = spans
        self.runtime = Runtime(self.mmu, self.allocator, self.scheduler,
                               self.channels, self.pkg_names)
        if self.metrics_registry is not None:
            # The in-sim /metrics route must not run collectors: the
            # JIT counters are wall-clock-only, and the response body's
            # length is charged simulated time — including them would
            # break jit on/off bit-identity.
            self.runtime.metrics_renderer = (
                lambda: self.metrics_registry.render_text(collect=False))
        self.kernel.net.waker = self.scheduler.wake
        if self.metrics is not None:
            metrics = self.metrics
            self.kernel.net.on_backlog = (
                lambda port, depth:
                metrics.accept_queue_depth.set(depth, port=str(port)))
            self.kernel.net.on_refused = (
                lambda port:
                metrics.accept_queue_refused.inc(port=str(port)))

        # Fast-path kill-switches (wall-clock only; defaults stay on).
        self.litterbox.transition_cache_enabled = config.transition_cache
        if not config.verdict_cache:
            self.kernel.verdict_cache = None

        # Fault containment + injection wiring.
        self.litterbox.fault_policy = config.fault_policy
        self.litterbox.quarantine_threshold = config.quarantine_threshold
        self.scheduler.fault_policy = config.fault_policy
        self.scheduler.restart_limit = config.restart_limit
        self.scheduler.reclaim = self.kernel.reclaim_goroutine
        self.kernel.current_gid = lambda: (
            self.scheduler.current.id
            if self.scheduler.current is not None else 0)
        # Per-enclosure resource quotas (multi-tenant platform).
        self.quota = None
        if config.quotas:
            from repro.quota import QuotaTable
            quota = QuotaTable(config.quotas)
            quota.tracer = self.tracer
            if self.metrics is not None:
                metrics = self.metrics
                quota.on_exceeded = (
                    lambda env, resource:
                    metrics.quota_exceeded.inc(env=env, resource=resource))
            self.quota = quota
            self.scheduler.quota = quota
            self.allocator.quota = quota
            self.kernel.quota = quota
            self.kernel.quota_env = lambda: (
                self.scheduler.current.env
                if self.scheduler.current is not None else None)
        if self.metrics is not None:
            self.allocator.metrics = self.metrics

        self.injector = None
        if config.inject:
            injector = FaultInjector(config.inject, seed=config.inject_seed)
            injector.env_provider = lambda: (
                self.scheduler.current.env.name
                if self.scheduler.current is not None else "trusted")
            self.injector = injector
            self.mmu.inject = injector
            self.kernel.inject = injector
            self.litterbox.injector = injector

        for cpu in self.cpus:
            cpu.syscall_handler = lambda cpu, nr, args: \
                self.backend.syscall(cpu, nr, args)
            cpu.rtcall_handler = self.runtime.dispatch
            cpu.lbcall_handler = self._lbcall

        if config.cores > 1:
            self._wire_smp()

    # ------------------------------------------------------------------ SMP

    def _wire_smp(self) -> None:
        """Enable the honest cross-core cost model (``cores > 1`` only).

        Wired *after* boot so image loading and environment construction
        stay free of IPIs, exactly as on one core: a core that has never
        executed holds no stale TLB entries worth shooting down.  From
        here on, any mutation of a page table that a remote core has
        installed (as its root or its EPT) interrupts that core —
        ``mm_cpumask`` targeting, so transfers to an enclosure only IPI
        cores actually running with that table.  The machine's *current*
        core is the initiator and is never IPI'd; mutations arriving
        from outside any slice (tenant eviction between drives) attribute
        to the last core scheduled, a documented modeling simplification.
        """
        self._shootdown_ns = 0.0
        tables: dict[int, PageTable] = {id(self.host_table): self.host_table}
        for env in self.litterbox.envs.values():
            if env.table is not None:
                tables[id(env.table)] = env.table
        for cpu in self.cpus:
            if cpu.ctx.page_table is not None:
                tables[id(cpu.ctx.page_table)] = cpu.ctx.page_table
            if cpu.ctx.ept is not None:
                tables[id(cpu.ctx.ept)] = cpu.ctx.ept
        for table in tables.values():
            table.shootdown = self._table_shootdown
        # MPK quarantine revokes by rewriting a PKRU value — register
        # state, not page-table state — so it needs an explicit flush
        # of every remote core.
        self.backend.remote_flush = self._remote_flush
        if self.metrics_registry is not None:
            registry = self.metrics_registry
            registry.gauge(
                "tlb_shootdowns_total",
                "Cross-core TLB shootdown rounds issued (SMP only)."
            ).set_function(lambda: float(self.clock.count("tlb_shootdowns")))
            registry.gauge(
                "tlb_shootdown_ipis_total",
                "Remote cores interrupted across all shootdown rounds."
            ).set_function(lambda: float(self.clock.count("ipis")))
            registry.gauge(
                "tlb_shootdown_ns_total",
                "Simulated ns the initiating cores spent on shootdowns."
            ).set_function(lambda: self._shootdown_ns)
            core_time = registry.gauge(
                "core_time_ns", "Per-core virtual time frontier.",
                labelnames=("core",))

            def _collect_core_time() -> None:
                for core in self.scheduler.cores:
                    core_time.set(core.vtime, core=str(core.id))

            registry.add_collector(_collect_core_time)

    def _table_shootdown(self, table: PageTable) -> None:
        """A mutated translation: IPI every remote core using ``table``."""
        remotes = [core for core in self.scheduler.cores
                   if core is not self.scheduler.current_core
                   and (core.ctx.page_table is table or core.ctx.ept is table)]
        if remotes:
            self._charge_shootdown(remotes, f"shootdown:{table.name}")

    def _remote_flush(self) -> None:
        """A revoked PKRU value: every remote core must resync."""
        remotes = [core for core in self.scheduler.cores
                   if core is not self.scheduler.current_core]
        if remotes:
            self._charge_shootdown(remotes, "shootdown:pkru")

    def _charge_shootdown(self, remotes: list, name: str) -> None:
        """Charge one IPI burst: the initiator pays the send plus the
        wait for the last acknowledgement; each remote core's virtual
        time absorbs its handler at the delivery instant."""
        clock = self.clock
        t0 = clock.now_ns
        cost = len(remotes) * (COSTS.IPI + COSTS.TLB_SHOOTDOWN)
        clock.tick("tlb_shootdowns", cost)
        clock.counters["ipis"] = (clock.counters.get("ipis", 0)
                                  + len(remotes))
        for core in remotes:
            core.vtime = max(core.vtime, t0) + COSTS.TLB_SHOOTDOWN
        self._shootdown_ns += cost
        if self.tracer is not None:
            self.tracer.complete("shootdown", name, t0, cost,
                                 ipis=len(remotes))

    # ------------------------------------------------------------------ setup

    def _make_backend(self, config: MachineConfig) -> Backend:
        if config.backend == "baseline":
            return BaselineBackend()
        if config.backend == "mpk":
            return MPKBackend(virtualize_keys=config.virtualize_keys,
                              arg_rules=config.arg_rules)
        if config.backend == "lwc":
            from repro.core.lb_lwc import LWCBackend
            return LWCBackend()
        if config.backend == "vtx":
            return VTXBackend(KVMDevice(self.kernel, self.clock),
                              arg_rules=config.arg_rules)
        raise ConfigError(f"unknown backend {config.backend!r}")

    def _load_image(self) -> None:
        """Map every linked section and copy its initial contents."""
        for load in self.image.sections:
            section = load.section
            pfns = []
            for _ in range(section.num_pages):
                pfns.append(self.physmem.alloc_frame())
            user = load.owner != LITTERBOX_SUPER
            self.host_table.map_range(section.base, section.size, pfns,
                                      section.perms, user=user)
            self.physmem.write(pfns[0] * PAGE_SIZE, b"")  # touch
            # Write contents page by page (frames may be discontiguous).
            for index, pfn in enumerate(pfns):
                chunk = load.data[index * PAGE_SIZE:(index + 1) * PAGE_SIZE]
                self.physmem.write(pfn * PAGE_SIZE, chunk)
        for addr, instrs in self.image.code_registry.items():
            self.interp.register_code(addr, instrs)

    # ------------------------------------------------------------------ LBCALL

    def _lbcall(self, cpu: CPU, hook: int, args: tuple[int, ...]) -> int:
        goroutine = self.scheduler.current
        if goroutine is None:
            raise Fault("exec", "LBCALL outside a goroutine")
        if hook == Hook.PROLOG:
            self.litterbox.prolog(cpu, goroutine, args[0], call_site=cpu.pc)
            return 0
        if hook == Hook.EPILOG:
            self.litterbox.epilog(cpu, goroutine, call_site=cpu.pc)
            return 0
        raise Fault("exec", f"LBCALL with unexpected hook {hook}")

    # ------------------------------------------------------------------ drive

    def run(self, entry_symbol: str | None = None,
            max_steps: int = 200_000_000) -> RunResult:
        """Run the program's main goroutine to completion.

        ``machine.perf`` is reset at entry so ``--stats`` and the
        benchmarks report the counters of *this* run only — back-to-back
        ``run()`` calls in one process no longer accumulate.
        (:meth:`resume` continues the current run and keeps counting.)
        """
        self.perf.begin_run()
        entry = (self.image.symbols[entry_symbol]
                 if entry_symbol else self.image.entry)
        self.scheduler.spawn(entry, env=self.litterbox.trusted_env)
        return self._finish(self.scheduler.run(max_total_steps=max_steps))

    def resume(self, max_steps: int = 200_000_000) -> RunResult:
        """Continue driving goroutines (servers) after injecting events."""
        return self._finish(self.scheduler.run(
            max_total_steps=max_steps, stop_when_main_exits=False))

    def _finish(self, result: RunResult) -> RunResult:
        if self.profiler is not None:
            self.profiler.finish()
        if result.status == "faulted":
            self.fault = result.fault
            if self.config.backend == "vtx":
                # A fault triggers a VM EXIT before the program aborts.
                self.clock.tick("vm_exits", COSTS.VMEXIT_ROUNDTRIP)
            if self.tracer is not None:
                self.tracer.instant(
                    "violation", "violation:abort",
                    fault=str(result.fault),
                    fault_kind=getattr(result.fault, "kind", ""))
        elif result.status == "killed":
            # Contained: the main goroutine died but the machine did not
            # abort; the backend already charged the containment cost.
            self.fault = result.fault
        result.goroutines = self.scheduler.exit_summary()
        return result

    # ------------------------------------------------------------------ tools

    def symbol(self, name: str) -> int:
        return self.image.symbols[name]

    def read_global(self, symbol: str) -> int:
        return self.mmu.read_word(self.litterbox.trusted_ctx,
                                  self.symbol(symbol), charge=False)

    def write_global(self, symbol: str, value: int) -> None:
        self.mmu.write_word(self.litterbox.trusted_ctx,
                            self.symbol(symbol), value, charge=False)

    def read_cstr(self, addr: int) -> bytes:
        return read_string(self.mmu, self.litterbox.trusted_ctx, addr)

    @property
    def stdout(self) -> bytes:
        return bytes(self.kernel.stdout)

    def fault_trace(self) -> str:
        """LitterBox's root-cause trace for an aborted program."""
        if self.fault is None:
            return ""
        trace = f"litterbox: program aborted: {self.fault}"
        if self.fault.env_name or self.fault.pkg:
            trace += f" [{self.fault.origin()}]"
        return trace

    def containment_report(self) -> dict:
        """Everything the run's fault containment did, in one dict."""
        lb = self.litterbox
        report = {
            "fault_policy": self.config.fault_policy,
            "contained": [
                {"kind": f.kind, "detail": f.detail, "origin": f.origin(),
                 "core": getattr(f, "core", 0)}
                for f in self.scheduler.contained
            ],
            "quarantined": {
                lb.envs[eid].name if eid in lb.envs else str(eid): why
                for eid, why in lb.quarantined.items()
            },
            "goroutines": self.scheduler.exit_summary(),
        }
        if self.injector is not None:
            report["injector"] = self.injector.report()
        if self.quota is not None:
            report["quota"] = self.quota.snapshot()
        if self.spans is not None and self.spans.fault_dumps:
            # The per-core flight recorder's black-box snapshots, one
            # per contained fault.  Keyed in only when non-empty so a
            # clean run's report is byte-identical to a spans-off run.
            report["flight_recorder"] = self.spans.flight_recorder()
        return report
