"""Request-scoped distributed tracing across goroutines, channels, net.

PR 2's tracer answers "where does enforcement time go" machine-wide;
this module answers "what happened to *this request*".  A
:class:`TraceContext` (W3C ``traceparent``-compatible 128-bit trace id
plus a 64-bit span id) is minted at the load-generator client for each
scheduled arrival — deterministically from the seed and arrival index,
never from a wall clock — and follows the request end to end:

* **wire** — the client stamps the context onto the connection when the
  request bytes are sent; the server's first ``read`` of those bytes
  adopts it onto the handling goroutine.  The *simulated* byte stream
  is never mutated (the guest charges per byte, and guest images are
  covered by committed sim-ns baselines), so the header rides a
  zero-cost shadow FIFO keyed by the receiving endpoint while the
  canonical ``traceparent`` string is still round-tripped through its
  real W3C encoding at each end;
* **goroutines** — ``go f()`` inherits the spawner's context
  (:meth:`Scheduler.spawn`);
* **channels** — a send enqueues the sender's context beside the value
  and the receive hands it to a context-less receiver
  (:class:`ChannelTable`), so worker pools join the request's trace;
* **enclosures** — Prolog/Epilog open and close per-enclosure
  sub-spans, and syscall-filter verdicts and Transfers attach as span
  annotations with ``core`` attribution.

The recorder is a pure observer: hooks never advance the
:class:`SimClock`, and with spans disabled every hook site is a single
``is None`` attribute test — simulated ns, traces, metrics, and
response bytes are bit-identical with spans on or off (the PR 5
bit-identity suite enforces this).

Production mechanisms
---------------------

* **Tail-based sampling** (:meth:`SpanRecorder.sampled_records`) —
  every trace that faulted, was shed, refused, reset, or exceeded the
  SLO latency threshold is kept; of the healthy remainder an *exact*
  ``floor(sample * n)`` fraction survives, chosen by a deterministic
  hash of the trace id (lowest hashes win), so a sampled export is a
  pure function of the seed.
* **Histogram exemplars** — the load generator attaches the trace id
  to each latency observation (``Histogram.observe(exemplar=...)``);
  a slow bucket in the exposition links to a concrete trace.
* **Flight recorder** — a bounded per-core ring of the last N
  span/enforcement events; when a fault is contained the faulting
  core's ring is snapshotted with the victim's trace id and shipped in
  ``containment_report()["flight_recorder"]`` — every quarantine
  carries its own black-box recording.

Export is Chrome trace-event JSON (:func:`span_trace` /
:func:`write_span_trace`), one process lane per load level and one
thread lane per kept trace, validated strictly by
:func:`validate_span_trace` in the same spirit as
``trace.validate_chrome_trace``.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque

from repro.trace import TraceFormatError, validate_chrome_trace

_MASK64 = (1 << 64) - 1

#: Trace flags that make a trace unconditionally survive tail sampling.
ANOMALY_FLAGS = ("faulted", "failed", "refused", "reset", "shed", "slo")

_HEX32 = frozenset("0123456789abcdef")


def _mix64(x: int) -> int:
    """splitmix64 finalizer: cheap, deterministic, well-distributed."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


class TraceContext:
    """A W3C trace-context identity: 128-bit trace id, 64-bit span id.

    Derived deterministically from ``(seed, arrival index)`` — the
    simulation has no wall clock and no randomness source of its own,
    and determinism is what makes the CI run-twice gates possible.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    @classmethod
    def derive(cls, seed: int, index: int) -> "TraceContext":
        hi = _mix64((seed & _MASK64) ^ _mix64(index))
        lo = _mix64(hi ^ index)
        trace_id = ((hi << 64) | lo) or 1  # all-zero is invalid in W3C
        span_id = _mix64(lo) or 1
        return cls(trace_id, span_id)

    @property
    def hex(self) -> str:
        return f"{self.trace_id:032x}"

    def to_traceparent(self) -> str:
        """``version-traceid-parentid-flags`` per the W3C spec; the
        sampled flag is always 01 (sampling here is tail-based)."""
        return f"00-{self.trace_id:032x}-{self.span_id:016x}-01"

    @classmethod
    def parse_traceparent(cls, text: str) -> "TraceContext | None":
        parts = text.split("-")
        if len(parts) != 4 or parts[0] != "00":
            return None
        tid, sid = parts[1], parts[2]
        if len(tid) != 32 or len(sid) != 16:
            return None
        if not (set(tid) <= _HEX32 and set(sid) <= _HEX32):
            return None
        trace_id = int(tid, 16)
        if trace_id == 0:
            return None
        return cls(trace_id, int(sid, 16))

    def __repr__(self) -> str:
        return f"TraceContext({self.to_traceparent()})"


def sample_hash(trace_id: int) -> int:
    """The deterministic rank used for tail sampling's healthy keep
    set: a 64-bit mix of both trace-id halves."""
    return _mix64((trace_id & _MASK64) ^ (trace_id >> 64))


class _TraceRecord:
    """Everything recorded about one request's trace."""

    __slots__ = ("trace_id", "index", "start", "end", "sent", "status",
                 "outcome", "completed", "spans", "annotations", "cores",
                 "flags", "handler")

    def __init__(self, trace_id: int, index: int, start: float):
        self.trace_id = trace_id
        self.index = index
        self.start = start      # scheduled arrival (sim ns)
        self.end = None         # completion (sim ns)
        self.sent = None        # first byte on the wire (sim ns)
        self.status = None      # HTTP status, when completed
        self.outcome = None     # ok|failed|shed|refused|reset
        self.completed = False
        self.spans = []         # closed sub-spans: dicts
        self.annotations = []   # (ts, name, detail dict)
        self.cores = set()      # every core that ran a slice for it
        self.flags = set()      # subset of ANOMALY_FLAGS
        self.handler = None     # open server.handle span, if any


class SpanRecorder:
    """Collects request-scoped spans against one machine's SimClock.

    Wired by :class:`~repro.machine.Machine` onto every propagation
    point (``scheduler.spans``, ``channels.spans``, ``kernel.spans``,
    ``net.spans``, ``litterbox.spans``); each hook site guards with a
    single ``is None`` test, so the disabled path is one attribute
    load.  No hook ever touches the clock.
    """

    def __init__(self, clock, seed: int = 0, sample: float = 1.0,
                 slo_ns: float = 1_000_000.0, cores: int = 1,
                 ring: int = 32):
        self.clock = clock
        self.seed = seed
        self.sample = sample
        self.slo_ns = slo_ns
        self.ring = ring
        self.scheduler = None       # wired by Machine
        self.net = None             # wired by Machine
        #: Set by the host-side load generator around its ``send`` so
        #: the wire hook attributes the bytes to the *new* request, not
        #: to whatever guest goroutine happens to be current (the pump
        #: runs synchronously inside the server's response write).
        self.outgoing_ctx = None
        self.traces: dict[int, _TraceRecord] = {}
        self._wire: dict[int, deque] = {}   # id(rx endpoint) -> FIFO
        self._chan: dict[int, deque] = {}   # channel handle -> ctx FIFO
        self._encl: dict[int, list] = {}    # id(goroutine) -> open spans
        self.rings = [deque(maxlen=ring) for _ in range(max(1, cores))]
        self.fault_dumps: list[dict] = []

    # -- context helpers -----------------------------------------------------

    def _current_goroutine(self):
        sched = self.scheduler
        return sched.current if sched is not None else None

    def _current_ctx(self):
        cur = self._current_goroutine()
        return cur.trace_ctx if cur is not None else None

    def _core(self) -> int:
        sched = self.scheduler
        if sched is None:
            return 0
        core = sched.current_core  # a SchedCore; cores[0] when idle
        return core.id if core is not None else 0

    def _ring_event(self, core: int, kind: str, trace_id: int | None,
                    detail: str) -> None:
        if core >= len(self.rings):
            core = 0
        self.rings[core].append({
            "ts": self.clock.now_ns,
            "kind": kind,
            "trace_id": f"{trace_id:032x}" if trace_id else None,
            "detail": detail,
        })

    # -- client lifecycle ----------------------------------------------------

    def client_arrival(self, index: int, due_at: float) -> TraceContext:
        """Mint the context for scheduled arrival ``index``; the root
        ``request`` span opens at the scheduled instant (open-loop
        latency is measured from the arrival, not the send)."""
        ctx = TraceContext.derive(self.seed, index)
        self.traces[ctx.trace_id] = _TraceRecord(ctx.trace_id, index,
                                                 due_at)
        return ctx

    def complete_request(self, ctx: TraceContext, status: int,
                         outcome: str) -> None:
        """Close the root span: the response arrived (or the request
        was shed/failed/reset) at the current simulated instant."""
        record = self.traces.get(ctx.trace_id)
        if record is None:
            return
        now = self.clock.now_ns
        handler = record.handler
        if handler is not None:
            handler["end"] = now
            record.spans.append(handler)
            record.handler = None
        record.end = now
        record.status = status
        record.outcome = outcome
        record.completed = True
        if outcome in ("failed", "shed", "reset"):
            record.flags.add(outcome)
        if outcome == "failed":
            # A 500 is the kernel's reclaim notice for a contained
            # fault: count it with the faulted traces for sampling.
            record.flags.add("faulted")
        if now - record.start > self.slo_ns:
            record.flags.add("slo")

    def mark_refused(self, ctx: TraceContext) -> None:
        """The connect was refused: the request never left the client."""
        record = self.traces.get(ctx.trace_id)
        if record is None:
            return
        record.end = self.clock.now_ns
        record.outcome = "refused"
        record.completed = True
        record.flags.add("refused")

    # -- wire propagation (net.py) -------------------------------------------

    def on_endpoint_send(self, endpoint) -> None:
        """Bytes left an endpoint: stamp the sender's context onto the
        receiving end's shadow FIFO.  Responses to host-side service
        endpoints (the load generator's recorders) are skipped — their
        trace closes at ``complete_request``, not by re-propagation."""
        ctx = self.outgoing_ctx
        if ctx is None:
            ctx = self._current_ctx()
        if ctx is None:
            return
        peer = endpoint.peer
        net = self.net
        if net is not None and id(peer) in net._service_endpoints:
            return
        fifo = self._wire.get(id(peer))
        if fifo is None:
            fifo = self._wire[id(peer)] = deque()
        now = self.clock.now_ns
        fifo.append((ctx.to_traceparent(), now))
        record = self.traces.get(ctx.trace_id)
        if record is not None and record.sent is None:
            record.sent = now
            record.spans.append({"name": "client.wait", "start":
                                 record.start, "end": now, "core": None})

    def forget_endpoint(self, endpoint) -> None:
        """Drop any undelivered wire contexts for ``endpoint``.  Called
        when a connection is torn down: ``id()`` values are recycled, so
        a stale FIFO could otherwise mis-attribute a future connection's
        first request."""
        self._wire.pop(id(endpoint), None)

    def on_sock_read(self, endpoint) -> None:
        """The server read request bytes: adopt the wire context onto
        the current goroutine, close the ``server.queue`` span (send →
        read) and open the ``server.handle`` span."""
        fifo = self._wire.get(id(endpoint))
        if not fifo:
            return
        traceparent, sent_ns = fifo.popleft()
        ctx = TraceContext.parse_traceparent(traceparent)
        if ctx is None:
            return
        goroutine = self._current_goroutine()
        if goroutine is not None:
            goroutine.trace_ctx = ctx
        record = self.traces.get(ctx.trace_id)
        if record is None:
            return
        now = self.clock.now_ns
        core = self._core()
        record.cores.add(core)
        record.spans.append({"name": "server.queue", "start": sent_ns,
                             "end": now, "core": core})
        record.handler = {"name": "server.handle", "start": now,
                          "end": None, "core": core}
        self._ring_event(core, "adopt", ctx.trace_id, "server.read")

    # -- runtime propagation (scheduler + channels) --------------------------

    def on_spawn(self, parent, child) -> None:
        """``go f()`` inherits the spawner's context."""
        if parent is not None and parent.trace_ctx is not None:
            child.trace_ctx = parent.trace_ctx

    def on_slice(self, goroutine, core: int) -> None:
        """A scheduler slice ran on ``core`` for a traced goroutine:
        core-set attribution plus a flight-recorder breadcrumb."""
        ctx = goroutine.trace_ctx
        record = self.traces.get(ctx.trace_id)
        if record is not None:
            record.cores.add(core)
        self._ring_event(core, "slice", ctx.trace_id, "run")

    def on_chan_send(self, handle: int) -> None:
        """A value was buffered: enqueue the sender's context beside it
        (``None`` too — the FIFOs must stay in lockstep)."""
        fifo = self._chan.get(handle)
        if fifo is None:
            fifo = self._chan[handle] = deque()
        fifo.append(self._current_ctx())

    def on_chan_recv(self, handle: int) -> None:
        """A value was taken: hand its sender's context to a receiver
        that has none (a receiver already tracing its own request keeps
        its id — satellite cross-core test relies on this)."""
        fifo = self._chan.get(handle)
        if not fifo:
            return
        ctx = fifo.popleft()
        if ctx is None:
            return
        goroutine = self._current_goroutine()
        if goroutine is None:
            return
        if goroutine.trace_ctx is None:
            goroutine.trace_ctx = ctx
        record = self.traces.get(goroutine.trace_ctx.trace_id)
        if record is not None:
            record.cores.add(self._core())

    # -- enforcement attribution (litterbox + kernel) ------------------------

    def on_prolog(self, goroutine, env_name: str) -> None:
        ctx = goroutine.trace_ctx
        if ctx is None:
            return
        core = self._core()
        span = {"name": f"enclosure:{env_name}", "start": self.clock.now_ns,
                "end": None, "core": core}
        self._encl.setdefault(id(goroutine), []).append((ctx, span))
        self._ring_event(core, "prolog", ctx.trace_id, env_name)

    def on_epilog(self, goroutine, env_name: str) -> None:
        stack = self._encl.get(id(goroutine))
        if not stack:
            return
        ctx, span = stack.pop()
        span["end"] = self.clock.now_ns
        record = self.traces.get(ctx.trace_id)
        if record is not None:
            record.spans.append(span)
        self._ring_event(self._core(), "epilog", ctx.trace_id, env_name)

    def annotate_filter(self, verdict: str, category: str,
                        mechanism: str) -> None:
        """Cardinality rule: only *abnormal* verdicts (deny / kill /
        inject) become span annotations — an allow per syscall would
        dominate every export — but all verdicts feed the per-core
        flight-recorder ring."""
        ctx = self._current_ctx()
        core = self._core()
        if ctx is not None and verdict != "allow":
            record = self.traces.get(ctx.trace_id)
            if record is not None:
                record.annotations.append(
                    (self.clock.now_ns, f"filter:{verdict}",
                     {"category": category, "mechanism": mechanism,
                      "core": core}))
        self._ring_event(core, f"filter:{verdict}",
                         ctx.trace_id if ctx is not None else None,
                         category)

    def on_transfer(self, pkg: str, size: int) -> None:
        ctx = self._current_ctx()
        core = self._core()
        if ctx is not None:
            record = self.traces.get(ctx.trace_id)
            if record is not None:
                record.annotations.append(
                    (self.clock.now_ns, "transfer",
                     {"pkg": pkg, "bytes": size, "core": core}))
        self._ring_event(core, "transfer",
                         ctx.trace_id if ctx is not None else None, pkg)

    # -- fault flight recorder -----------------------------------------------

    def on_contained_fault(self, goroutine, kind: str, core: int) -> None:
        """A fault was contained: mark the victim's trace, close its
        dangling enclosure sub-spans, and snapshot the faulting core's
        ring — the black box that ships with the quarantine."""
        ctx = goroutine.trace_ctx
        now = self.clock.now_ns
        stack = self._encl.pop(id(goroutine), None)
        if stack:
            for span_ctx, span in stack:
                span["end"] = now
                span["name"] += " [unwound]"
                record = self.traces.get(span_ctx.trace_id)
                if record is not None:
                    record.spans.append(span)
        trace_id = None
        if ctx is not None:
            trace_id = ctx.trace_id
            record = self.traces.get(trace_id)
            if record is not None:
                record.flags.add("faulted")
                record.annotations.append(
                    (now, "fault", {"kind": kind, "core": core}))
        self._ring_event(core, "fault", trace_id, kind)
        if core >= len(self.rings):
            core = 0
        self.fault_dumps.append({
            "ts": now,
            "core": core,
            "kind": kind,
            "trace_id": f"{trace_id:032x}" if trace_id else None,
            "events": [dict(event) for event in self.rings[core]],
        })

    def flight_recorder(self) -> dict:
        """The containment-report payload: ring size plus one snapshot
        per contained fault, in containment order."""
        return {"ring": self.ring, "dumps": list(self.fault_dumps)}

    # -- tail-based sampling -------------------------------------------------

    def sampled_records(self) -> tuple[list[_TraceRecord], dict]:
        """Apply the tail-sampling policy; returns (kept records sorted
        by arrival index, summary counters).

        Every anomalous trace (faulted / failed / shed / refused /
        reset / SLO-exceeded) is kept.  Of the healthy completed rest,
        exactly ``floor(sample * n)`` survive — those with the lowest
        ``sample_hash`` — so the kept fraction matches the configured
        rate exactly and deterministically.  Incomplete traces (still
        queued at shutdown) are dropped but counted.
        """
        flagged, healthy, incomplete = [], [], 0
        for record in self.traces.values():
            if not record.completed:
                incomplete += 1
            elif record.flags:
                flagged.append(record)
            else:
                healthy.append(record)
        n_keep = int(self.sample * len(healthy))
        healthy.sort(key=lambda r: (sample_hash(r.trace_id), r.index))
        kept = flagged + healthy[:n_keep]
        kept.sort(key=lambda r: r.index)
        summary = {
            "total": len(self.traces),
            "flagged": len(flagged),
            "healthy": len(healthy),
            "healthy_kept": n_keep,
            "incomplete": incomplete,
            "sample": self.sample,
        }
        return kept, summary


# -- Chrome trace-event export -------------------------------------------------

def span_trace(recorders: list[tuple[str, SpanRecorder]]) -> dict:
    """Render one or more recorders as a Chrome trace-event document.

    One process lane per recorder (a load level, a study leg), one
    thread lane per kept trace; the root ``request`` span carries the
    outcome, flags, and core set, sub-spans carry per-phase extents,
    annotations render as instants.  Timestamps are simulated ns
    converted to the µs the format requires.
    """
    events: list[dict] = []
    metadata: list[dict] = []
    samplings: dict[str, dict] = {}
    for pid0, (label, recorder) in enumerate(recorders):
        pid = pid0 + 1
        kept, summary = recorder.sampled_records()
        samplings[label] = summary
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": f"level:{label}"}})
        for tid0, record in enumerate(kept):
            tid = tid0 + 1
            hexid = f"{record.trace_id:032x}"
            metadata.append({"name": "thread_name", "ph": "M",
                             "pid": pid, "tid": tid,
                             "args": {"name": f"trace:{hexid[:16]}"}})
            end = record.end if record.end is not None else record.start
            events.append({
                "name": "request", "cat": "request", "ph": "X",
                "ts": record.start / 1000.0,
                "dur": (end - record.start) / 1000.0,
                "pid": pid, "tid": tid,
                "args": {
                    "trace_id": hexid,
                    "index": record.index,
                    "outcome": record.outcome or "incomplete",
                    "status": record.status,
                    "cores": sorted(record.cores),
                    "flags": sorted(record.flags),
                },
            })
            for span in record.spans:
                args = {"trace_id": hexid}
                if span.get("core") is not None:
                    args["core"] = span["core"]
                events.append({
                    "name": span["name"], "cat": "span", "ph": "X",
                    "ts": span["start"] / 1000.0,
                    "dur": (span["end"] - span["start"]) / 1000.0,
                    "pid": pid, "tid": tid, "args": args,
                })
            for ts, name, detail in record.annotations:
                args = {"trace_id": hexid}
                args.update(detail)
                events.append({
                    "name": name, "cat": "annotation", "ph": "i",
                    "ts": ts / 1000.0, "s": "t",
                    "pid": pid, "tid": tid, "args": args,
                })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ns",
        "otherData": {
            "tool": "repro-spans",
            "clock": "simulated-ns",
            "sampling": samplings,
        },
    }


def write_span_trace(path, recorders: list[tuple[str, SpanRecorder]]) -> int:
    """Serialize :func:`span_trace` to ``path``; returns the number of
    trace events written (metadata included)."""
    document = span_trace(recorders)
    pathlib.Path(path).write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n")
    return len(document["traceEvents"])


def validate_span_trace(source) -> int:
    """Strict schema check for span exports.

    First the generic Chrome trace-event envelope/phase invariants
    (:func:`trace.validate_chrome_trace`), then the span-specific
    contract: every non-metadata event carries a 32-hex ``trace_id``
    arg; ``request`` roots carry an integer ``index``, a string
    ``outcome``, and sorted ``cores``/``flags`` lists; the document
    declares its sampling summary.  Returns the event count.
    """
    if isinstance(source, (str, pathlib.Path)):
        document = json.loads(pathlib.Path(source).read_text())
    else:
        document = source
    count = validate_chrome_trace(document)
    sampling = document.get("otherData", {}).get("sampling")
    if not isinstance(sampling, dict):
        raise TraceFormatError("otherData.sampling must be an object")
    for label, summary in sampling.items():
        for key in ("total", "flagged", "healthy", "healthy_kept",
                    "incomplete", "sample"):
            if key not in summary:
                raise TraceFormatError(
                    f"sampling[{label!r}]: missing {key!r}")
    for index, event in enumerate(document["traceEvents"]):
        if event["ph"] == "M":
            continue
        where = f"traceEvents[{index}]"
        args = event.get("args")
        if not isinstance(args, dict):
            raise TraceFormatError(f"{where}: span events need args")
        trace_id = args.get("trace_id")
        if (not isinstance(trace_id, str) or len(trace_id) != 32
                or not set(trace_id) <= _HEX32):
            raise TraceFormatError(
                f"{where}: args.trace_id must be 32 lowercase hex chars")
        if event["name"] == "request":
            if not isinstance(args.get("index"), int):
                raise TraceFormatError(f"{where}: request needs int index")
            if not isinstance(args.get("outcome"), str):
                raise TraceFormatError(
                    f"{where}: request needs str outcome")
            for key in ("cores", "flags"):
                value = args.get(key)
                if not isinstance(value, list) or value != sorted(value):
                    raise TraceFormatError(
                        f"{where}: request {key} must be a sorted list")
    return count
