"""Runtime services reachable from compiled code via RTCALL.

These model the parts of a Go-like runtime that are linked into every
binary: the allocator entry point (``mallocgc``), goroutine creation,
channels, and string/slice helpers.  Helpers act *on behalf of* the
calling code: every read or write of user-visible data goes through the
caller's translation context, so a string concatenation inside an
enclosure faults if either operand lies outside its memory view.
Only allocator/scheduler metadata is runtime-private (trusted), exactly
as in the paper's threat model.
"""

from __future__ import annotations

import enum
import struct

from repro.errors import Fault, WouldBlock
from repro.hw.clock import COSTS
from repro.hw.cpu import CPU
from repro.hw.mmu import MMU, TranslationContext
from repro.hw.pages import PAGE_MASK, PAGE_SIZE
from repro.os.syscalls import SYS_WRITE
from repro.runtime.allocator import Allocator
from repro.runtime.channels import ChannelTable
from repro.runtime.scheduler import Scheduler


class RT(enum.IntEnum):
    """Runtime service numbers for the RTCALL instruction."""

    ALLOC = 1          # (pkg_id, size) -> addr
    GO = 2             # (fn_addr, argc, *args) -> 0
    CHAN_NEW = 3       # (capacity) -> handle
    CHAN_SEND = 4      # (handle, value) -> 0
    CHAN_RECV = 5      # (handle) -> value
    CHAN_CLOSE = 6     # (handle) -> 0
    CHAN_LEN = 7       # (handle) -> buffered count
    STR_CONCAT = 10    # (pkg_id, a, b) -> addr
    STR_EQ = 11        # (a, b) -> 0/1
    STR_CMP = 12       # (a, b) -> -1/0/1
    STR_SUB = 13       # (pkg_id, s, lo, hi) -> addr
    STR_AT = 14        # (s, i) -> byte
    STR_FROM_BYTES = 15  # (pkg_id, ptr, len) -> addr
    ITOA = 16          # (pkg_id, n) -> addr
    ATOI = 17          # (s) -> int
    PRINT = 18         # (s) -> bytes written (write syscall to stdout)
    SLICE_NEW = 20     # (pkg_id, elem_size, len, cap) -> desc addr
    SLICE_APPEND = 21  # (pkg_id, desc, elem_size, value) -> desc
    SLICE_AT = 22      # (desc, elem_size, i) -> value
    SLICE_PUT = 23     # (desc, elem_size, i, value) -> 0
    STR_FROM_SLICE = 24  # (pkg_id, desc) -> string addr
    SLICE_FROM_STR = 25  # (pkg_id, s) -> []byte desc addr
    SLICE_COPY = 26    # (dst_desc, src_desc, elem_size) -> copied count
    PANIC = 30         # (code) -> aborts
    METRICS = 31       # (pkg_id) -> string addr (metrics exposition)


# String layout: [len:i64][bytes].  Slice descriptor: [data,len,cap].
STR_HEADER = 8
SLICE_DESC = 24
_DESC = struct.Struct("<qqq")


def read_string(mmu: MMU, ctx: TranslationContext, addr: int) -> bytes:
    length = mmu.read_word(ctx, addr, charge=False)
    if length < 0 or length > (1 << 32):
        raise Fault("arith", f"corrupt string header at {addr:#x}")
    return mmu.read(ctx, addr + STR_HEADER, length, charge=False)


class Runtime:
    """Dispatch target for the RTCALL instruction."""

    def __init__(self, mmu: MMU, allocator: Allocator, scheduler: Scheduler,
                 channels: ChannelTable, pkg_names: list[str]):
        self.mmu = mmu
        self.clock = mmu.clock
        self.allocator = allocator
        self.scheduler = scheduler
        self.channels = channels
        self.pkg_names = pkg_names
        #: Wired by the machine when metrics are on: () -> exposition
        #: text.  ``None`` makes RT.METRICS return the empty string, so
        #: a metrics-built image still runs with metrics disabled.
        self.metrics_renderer = None
        #: Service-number-indexed dispatch table (None = unknown).
        self._handlers = [None] * (max(self._HANDLER_NAMES) + 1)
        for service, name in self._HANDLER_NAMES.items():
            self._handlers[service] = getattr(self, name)

    # -- helpers shared with the machine ----------------------------------

    def pkg_name(self, pkg_id: int) -> str:
        try:
            return self.pkg_names[pkg_id]
        except IndexError:
            raise Fault("exec", f"bad package id {pkg_id}") from None

    def new_string(self, ctx: TranslationContext, pkg: str,
                   data: bytes) -> int:
        addr = self.allocator.alloc(pkg, STR_HEADER + max(1, len(data)))
        self.mmu.write_word(ctx, addr, len(data), charge=False)
        if data:
            self.mmu.write(ctx, addr + STR_HEADER, data, charge=False)
        self.clock.charge(COSTS.MEM_BYTE * len(data))
        return addr

    # -- dispatch ----------------------------------------------------------
    # One bound method per service, indexed by service number.  The
    # table replaces the historical if-chain: RTCALL frequency in the
    # macro workloads made the ~20 comparisons ahead of the slice
    # services a measurable share of wall time.  Handlers are ordinary
    # methods so subclasses and tests can still override them; the
    # table binds per-instance in ``__init__``.

    def dispatch(self, cpu: CPU, service: int, args: tuple[int, ...]) -> int:
        handler = (self._handlers[service]
                   if 0 <= service < len(self._handlers) else None)
        if handler is None:
            raise Fault("exec", f"unknown runtime service {service}")
        return handler(cpu, args)

    def _rt_alloc(self, cpu: CPU, args) -> int:
        pkg_id, size = args
        return self.allocator.alloc(self.pkg_name(pkg_id), size)

    def _rt_go(self, cpu: CPU, args) -> int:
        fn_addr, argc = args[0], args[1]
        self.scheduler.spawn(fn_addr, tuple(args[2:2 + argc]))
        return 0

    def _rt_chan_new(self, cpu: CPU, args) -> int:
        return self.channels.new(args[0])

    def _rt_chan_send(self, cpu: CPU, args) -> int:
        self.channels.send(args[0], args[1])
        return 0

    def _rt_chan_recv(self, cpu: CPU, args) -> int:
        return self.channels.recv(args[0])

    def _rt_chan_close(self, cpu: CPU, args) -> int:
        self.channels.close(args[0])
        return 0

    def _rt_chan_len(self, cpu: CPU, args) -> int:
        return self.channels.pending(args[0])

    def _rt_str_concat(self, cpu: CPU, args) -> int:
        ctx, mmu = cpu.ctx, self.mmu
        pkg_id, a, b = args
        data = read_string(mmu, ctx, a) + read_string(mmu, ctx, b)
        self.clock.charge(COSTS.MEM_BYTE * len(data))
        return self.new_string(ctx, self.pkg_name(pkg_id), data)

    def _rt_str_eq(self, cpu: CPU, args) -> int:
        ctx, mmu = cpu.ctx, self.mmu
        a, b = args
        return 1 if read_string(mmu, ctx, a) == read_string(mmu, ctx, b) \
            else 0

    def _rt_str_cmp(self, cpu: CPU, args) -> int:
        ctx, mmu = cpu.ctx, self.mmu
        left = read_string(mmu, ctx, args[0])
        right = read_string(mmu, ctx, args[1])
        return -1 if left < right else (1 if left > right else 0)

    def _rt_str_sub(self, cpu: CPU, args) -> int:
        ctx = cpu.ctx
        pkg_id, s, lo, hi = args
        data = read_string(self.mmu, ctx, s)
        if not 0 <= lo <= hi <= len(data):
            raise Fault("arith", f"substring bounds [{lo}:{hi}] "
                                 f"of {len(data)}-byte string")
        return self.new_string(ctx, self.pkg_name(pkg_id), data[lo:hi])

    def _rt_str_at(self, cpu: CPU, args) -> int:
        ctx, mmu = cpu.ctx, self.mmu
        s, index = args
        length = mmu.read_word(ctx, s, charge=False)
        if not 0 <= index < length:
            raise Fault("arith", f"string index {index} out of "
                                 f"range [0,{length})")
        return mmu.read_byte(ctx, s + STR_HEADER + index)

    def _rt_str_from_bytes(self, cpu: CPU, args) -> int:
        ctx = cpu.ctx
        pkg_id, ptr, length = args
        data = self.mmu.read(ctx, ptr, length, charge=False)
        self.clock.charge(COSTS.MEM_BYTE * length)
        return self.new_string(ctx, self.pkg_name(pkg_id), data)

    def _rt_itoa(self, cpu: CPU, args) -> int:
        pkg_id, value = args
        return self.new_string(cpu.ctx, self.pkg_name(pkg_id),
                               str(value).encode())

    def _rt_metrics(self, cpu: CPU, args) -> int:
        renderer = self.metrics_renderer
        text = renderer() if renderer is not None else ""
        return self.new_string(cpu.ctx, self.pkg_name(args[0]),
                               text.encode())

    def _rt_atoi(self, cpu: CPU, args) -> int:
        data = read_string(self.mmu, cpu.ctx, args[0])
        try:
            return int(data.strip() or b"0")
        except ValueError:
            return 0

    def _rt_print(self, cpu: CPU, args) -> int:
        length = self.mmu.read_word(cpu.ctx, args[0], charge=False)
        return cpu.syscall_handler(
            cpu, SYS_WRITE, (1, args[0] + STR_HEADER, length))

    def _rt_slice_new(self, cpu: CPU, args) -> int:
        return self._slice_new(cpu.ctx, *args)

    def _rt_slice_append(self, cpu: CPU, args) -> int:
        return self._slice_append(cpu.ctx, *args)

    # The two slice hot paths open-code _slice_index (same bounds
    # check, same fault text) — indexed element access is the most
    # frequent runtime service in the macro workloads.

    def _rt_slice_at(self, cpu: CPU, args) -> int:
        ctx, mmu = cpu.ctx, self.mmu
        desc, elem_size, index = args
        data, length, _ = self._read_desc(ctx, desc)
        if not 0 <= index < length:
            raise Fault("arith",
                        f"slice index {index} out of range [0,{length})")
        addr = data + index * elem_size
        return (mmu.read_byte(ctx, addr) if elem_size == 1
                else mmu.read_word(ctx, addr))

    def _rt_slice_put(self, cpu: CPU, args) -> int:
        ctx, mmu = cpu.ctx, self.mmu
        desc, elem_size, index, value = args
        data, length, _ = self._read_desc(ctx, desc)
        if not 0 <= index < length:
            raise Fault("arith",
                        f"slice index {index} out of range [0,{length})")
        addr = data + index * elem_size
        if elem_size == 1:
            mmu.write_byte(ctx, addr, value)
        else:
            mmu.write_word(ctx, addr, value)
        return 0

    def _rt_str_from_slice(self, cpu: CPU, args) -> int:
        ctx, mmu = cpu.ctx, self.mmu
        pkg_id, desc = args
        data, length, _ = self._read_desc(ctx, desc)
        blob = mmu.read(ctx, data, length, charge=False)
        self.clock.charge(COSTS.MEM_BYTE * length)
        return self.new_string(ctx, self.pkg_name(pkg_id), blob)

    def _rt_slice_from_str(self, cpu: CPU, args) -> int:
        ctx = cpu.ctx
        pkg_id, s = args
        blob = read_string(self.mmu, ctx, s)
        desc = self._slice_new(ctx, pkg_id, 1, len(blob), max(1, len(blob)))
        data, _, _ = self._read_desc(ctx, desc)
        if blob:
            self.mmu.write(ctx, data, blob, charge=False)
        self.clock.charge(COSTS.MEM_BYTE * len(blob))
        return desc

    def _rt_slice_copy(self, cpu: CPU, args) -> int:
        ctx = cpu.ctx
        dst_desc, src_desc, elem_size = args
        dst, dst_len, _ = self._read_desc(ctx, dst_desc)
        src, src_len, _ = self._read_desc(ctx, src_desc)
        count = min(dst_len, src_len)
        if count > 0:
            self.mmu.memcpy(ctx, dst, src, count * elem_size)
        return count

    def _rt_panic(self, cpu: CPU, args) -> int:
        raise Fault("exec", f"panic({args[0]})")

    _HANDLER_NAMES = {
        RT.ALLOC: "_rt_alloc", RT.GO: "_rt_go",
        RT.CHAN_NEW: "_rt_chan_new", RT.CHAN_SEND: "_rt_chan_send",
        RT.CHAN_RECV: "_rt_chan_recv", RT.CHAN_CLOSE: "_rt_chan_close",
        RT.CHAN_LEN: "_rt_chan_len", RT.STR_CONCAT: "_rt_str_concat",
        RT.STR_EQ: "_rt_str_eq", RT.STR_CMP: "_rt_str_cmp",
        RT.STR_SUB: "_rt_str_sub", RT.STR_AT: "_rt_str_at",
        RT.STR_FROM_BYTES: "_rt_str_from_bytes", RT.ITOA: "_rt_itoa",
        RT.ATOI: "_rt_atoi", RT.PRINT: "_rt_print",
        RT.SLICE_NEW: "_rt_slice_new", RT.SLICE_APPEND: "_rt_slice_append",
        RT.SLICE_AT: "_rt_slice_at", RT.SLICE_PUT: "_rt_slice_put",
        RT.STR_FROM_SLICE: "_rt_str_from_slice",
        RT.SLICE_FROM_STR: "_rt_slice_from_str",
        RT.SLICE_COPY: "_rt_slice_copy", RT.PANIC: "_rt_panic",
        RT.METRICS: "_rt_metrics",
    }

    # -- slices -------------------------------------------------------------

    def _slice_new(self, ctx, pkg_id: int, elem_size: int, length: int,
                   cap: int) -> int:
        if elem_size not in (1, 8):
            raise Fault("exec", f"unsupported element size {elem_size}")
        if length < 0 or cap < length:
            raise Fault("arith", f"make([]T, {length}, {cap})")
        pkg = self.pkg_name(pkg_id)
        cap = max(cap, 1)
        desc = self.allocator.alloc(pkg, SLICE_DESC)
        data = self.allocator.alloc(pkg, cap * elem_size)
        mmu = self.mmu
        mmu.write(ctx, data, bytes(cap * elem_size), charge=False)
        self.clock.charge(COSTS.MEM_BYTE * cap * elem_size)
        mmu.write(ctx, desc, struct.pack("<qqq", data, length, cap),
                  charge=False)
        return desc

    def _read_desc(self, ctx, desc: int) -> tuple[int, int, int]:
        # Single-page descriptors (the overwhelmingly common case — the
        # allocator 8-aligns the 24-byte block) unpack straight from
        # the frame, skipping ``mmu.read``'s bytes copy.  Same single
        # ``_access`` as the generic path, so checks, faults, and perf
        # counters are unchanged.
        offset = desc & PAGE_MASK
        if offset + SLICE_DESC <= PAGE_SIZE:
            return _DESC.unpack_from(self.mmu.read_frame(ctx, desc), offset)
        raw = self.mmu.read(ctx, desc, SLICE_DESC, charge=False)
        return _DESC.unpack(raw)

    def _slice_index(self, ctx, desc: int, elem_size: int,
                     index: int) -> int:
        data, length, _ = self._read_desc(ctx, desc)
        if not 0 <= index < length:
            raise Fault("arith",
                        f"slice index {index} out of range [0,{length})")
        return data + index * elem_size

    def _slice_append(self, ctx, pkg_id: int, desc: int, elem_size: int,
                      value: int) -> int:
        mmu = self.mmu
        data, length, cap = self._read_desc(ctx, desc)
        if length == cap:
            new_cap = max(4, cap * 2)
            new_data = self.allocator.alloc(
                self.pkg_name(pkg_id), new_cap * elem_size)
            old = mmu.read(ctx, data, length * elem_size, charge=False)
            mmu.write(ctx, new_data, old, charge=False)
            mmu.write(ctx, new_data + len(old),
                      bytes((new_cap - length) * elem_size), charge=False)
            self.clock.charge(COSTS.MEM_BYTE * new_cap * elem_size)
            data, cap = new_data, new_cap
        addr = data + length * elem_size
        if elem_size == 1:
            mmu.write_byte(ctx, addr, value)
        else:
            mmu.write_word(ctx, addr, value)
        mmu.write(ctx, desc, struct.pack("<qqq", data, length + 1, cap),
                  charge=False)
        return desc
