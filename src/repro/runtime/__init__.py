"""Language runtime: allocator, scheduler, channels, RTCALL services."""

from repro.runtime.allocator import Allocator, SIZE_CLASSES, SPAN_PAGES, SPAN_SIZE, Span
from repro.runtime.channels import Channel, ChannelTable
from repro.runtime.runtime import RT, Runtime, read_string
from repro.runtime.scheduler import Goroutine, RunResult, Scheduler

__all__ = [
    "Allocator", "SIZE_CLASSES", "SPAN_PAGES", "SPAN_SIZE", "Span",
    "Channel", "ChannelTable",
    "RT", "Runtime", "read_string",
    "Goroutine", "RunResult", "Scheduler",
]
