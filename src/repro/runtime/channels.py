"""Go-style channels.

Channels are the paper's trusted-callback mechanism: "the enclosure
forwards requests to a trusted handler goroutine via go channels"
(FastHTTP, §6.2; wiki app, §6.3).  Channel state is runtime-internal —
like Go's hchan it is managed by the (trusted) runtime, so a channel
is a safe communication capability across environments while the
*values* sent through it (often pointers) remain subject to the
receiver's and sender's own memory views when dereferenced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError, WouldBlock


@dataclass
class Channel:
    """One buffered channel of 64-bit values."""

    id: int
    capacity: int
    buffer: deque = field(default_factory=deque)
    closed: bool = False

    @property
    def send_key(self) -> tuple:
        return ("chan_send", self.id)

    @property
    def recv_key(self) -> tuple:
        return ("chan_recv", self.id)


class ChannelTable:
    """Registry of live channels, keyed by integer handle."""

    def __init__(self, waker) -> None:
        self._channels: dict[int, Channel] = {}
        self._next_id = 1
        self._wake = waker
        #: Optional request-span recorder, wired by the machine.  The
        #: send/recv hooks run after the buffer mutation (WouldBlock is
        #: raised before any state changes), so their shadow FIFO stays
        #: in lockstep with the value buffer — including under the JIT,
        #: whose compiled traces call send/recv as guarded runtime
        #: services rather than open-coding them.
        self.spans = None

    def new(self, capacity: int) -> int:
        if capacity < 0:
            raise ConfigError("negative channel capacity")
        channel = Channel(self._next_id, max(1, capacity))
        self._channels[channel.id] = channel
        self._next_id += 1
        return channel.id

    def get(self, handle: int) -> Channel:
        channel = self._channels.get(handle)
        if channel is None:
            raise ConfigError(f"bad channel handle {handle}")
        return channel

    def send(self, handle: int, value: int) -> None:
        channel = self.get(handle)
        if channel.closed:
            raise ConfigError("send on closed channel")
        if len(channel.buffer) >= channel.capacity:
            raise WouldBlock(channel.send_key)
        channel.buffer.append(value)
        if self.spans is not None:
            self.spans.on_chan_send(handle)
        self._wake(channel.recv_key)

    def recv(self, handle: int) -> int:
        """Receive one value; on a closed, drained channel returns 0
        (the zero value), as Go does."""
        channel = self.get(handle)
        if channel.buffer:
            value = channel.buffer.popleft()
            if self.spans is not None:
                self.spans.on_chan_recv(handle)
            self._wake(channel.send_key)
            return value
        if channel.closed:
            return 0
        raise WouldBlock(channel.recv_key)

    def close(self, handle: int) -> None:
        channel = self.get(handle)
        channel.closed = True
        self._wake(channel.recv_key)
        self._wake(channel.send_key)

    def pending(self, handle: int) -> int:
        return len(self.get(handle).buffer)
