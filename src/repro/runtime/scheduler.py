"""User-level goroutine scheduler (paper §5.1 Runtime).

"The scheduler uses the Execute hook to switch between goroutines
associated with different environments" and "execution environments are
transitively inherited by goroutine creation so that user-level threads
created inside an enclosure's environment continue to execute in the
same environment" (preventing escalation through `go`).

SMP (``MachineConfig(cores=N)``): the scheduler owns one
:class:`SchedCore` per simulated CPU, each with its own run queue and
*virtual time* — the simulated instant up to which that core has
executed.  The drive loop always runs the core with the smallest
virtual time (lowest id on ties), sliding the shared :class:`SimClock`
to ``max(core.vtime, goroutine.ready_at)`` before the slice and
recording the core's new frontier after it.  The interleaving is
therefore a pure function of the workload and seed — no host
concurrency is involved — and a one-core machine takes a separate
branch whose arithmetic is untouched, keeping its simulated values
bit-identical to the historical single-core scheduler.

An idle core steals the far half of the busiest core's queue (fairness:
no goroutine can starve behind a long queue while another core idles),
and a wakeup re-enqueues the goroutine on the core it last ran on,
migrating across cores only through stealing — the cheap case on real
hardware, since a migrated goroutine repopulates the new core's TLB.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.enclosure import Environment
from repro.errors import Fault, MachineHalt, QuarantinedFault, WouldBlock
from repro.hw.clock import COSTS
from repro.hw.cpu import CPU, StackSegment
from repro.isa.interp import GoroutineExit, Interpreter


@dataclass
class Goroutine:
    """One user-level thread."""

    id: int
    env: Environment
    entry: int
    args: tuple[int, ...] = ()
    activation: dict | None = None
    #: Stack of (env, fp, sp, stack) saved by Prolog for nested switches.
    env_stack: list = field(default_factory=list)
    #: Per-environment split stacks: env id -> StackSegment.
    stacks: dict[int, StackSegment] = field(default_factory=dict)
    state: str = "new"  # new | runnable | blocked | done
    wait_key: tuple | None = None
    #: How the goroutine ended: "" while live, then "ran" (exited
    #: normally) or "killed-by-fault" (containment).
    exit: str = ""
    #: The contained fault that killed this goroutine, if any.
    fault: Fault | None = None
    #: Supervised-restart generation (see ``Scheduler.restart_limit``).
    restarts: int = 0
    #: The core this goroutine last ran on (its wake affinity).
    core: int = 0
    #: Simulated instant the goroutine became runnable; an SMP core
    #: never starts a slice before the goroutine was actually ready.
    ready_at: float = 0.0
    #: Request-scoped trace context (spans observer): inherited across
    #: ``go``, adopted from the wire/channels, never charged sim time.
    trace_ctx: object = None


@dataclass
class RunResult:
    """Outcome of a scheduler drive."""

    status: str              # exited | halted | faulted | killed | idle
    exit_code: int = 0
    fault: Fault | None = None
    #: Per-goroutine exit summary (filled in by ``Machine._finish``).
    goroutines: dict | None = None


@dataclass
class SchedCore:
    """One simulated CPU as the scheduler sees it."""

    id: int
    cpu: CPU
    #: This core's canonical translation context (its private TLB and
    #: PKRU cell).  A migrated goroutine's saved activation still points
    #: at the context of the core it last ran on; the drive loop
    #: re-installs the executing core's own context after every restore.
    ctx: object = None
    runq: deque = field(default_factory=deque)
    #: Virtual time: the simulated instant this core has executed up to.
    vtime: float = 0.0


class Scheduler:
    """Cooperative round-robin scheduler over N simulated CPUs."""

    TIME_SLICE = 200_000  # instructions before a voluntary rotate

    def __init__(self, cpu: CPU, interp: Interpreter, litterbox,
                 cpus: list[CPU] | None = None) -> None:
        self.cpu = cpu
        self.interp = interp
        self.litterbox = litterbox
        self.cpus = list(cpus) if cpus else [cpu]
        self.cores = [SchedCore(i, c, ctx=c.ctx)
                      for i, c in enumerate(self.cpus)]
        #: True on a multi-core machine; every SMP-only branch guards on
        #: this so the one-core drive loop stays bit-identical.
        self.smp = len(self.cores) > 1
        self.current_core: SchedCore = self.cores[0]
        #: Work-stealing events so far (queues migrated, not goroutines).
        self.steals = 0
        self.goroutines: list[Goroutine] = []
        #: Core 0's run queue doubles as the classic single queue.
        self.runnable = self.cores[0].runq
        self.blocked: dict[tuple, list[Goroutine]] = {}
        self.current: Goroutine | None = None
        self.main: Goroutine | None = None
        #: Optional enforcement-event tracer, wired by the machine.
        self.tracer = None
        #: Optional sim-time sampling profiler, wired by the machine;
        #: Execute re-points its env attribution like the tracer's.
        self.profiler = None
        #: Optional request-span recorder, wired by the machine.
        self.spans = None
        #: Fault policy: "abort" (paper §2.2), "kill-goroutine", or
        #: "quarantine" (kill + trip the enclosure's quarantine breaker).
        self.fault_policy = "abort"
        #: Optional kernel callback ``reclaim(gid) -> int`` that closes
        #: the dead goroutine's fds; wired by the machine.
        self.reclaim = None
        #: Faults contained (not aborted) so far, in order.
        self.contained: list[Fault] = []
        #: How many times a killed goroutine may be respawned at its
        #: original entry (supervised restart, 0 = never).
        self.restart_limit = 0
        #: Optional per-enclosure quota table (machine-wired): charged
        #: one completed slice's instructions at every rotation, keyed
        #: by the environment the goroutine ended the slice in.  ``None``
        #: keeps the drive loop quota-free and bit-identical.
        self.quota = None
        self._next_id = 1

    # -- creation ------------------------------------------------------------

    def spawn(self, entry: int, args: tuple[int, ...] = (),
              env: Environment | None = None) -> Goroutine:
        """Create a goroutine; it inherits the spawner's environment
        unless one is given explicitly (only the machine does that,
        for the main goroutine)."""
        if env is None:
            if self.current is None:
                raise Fault("exec", "spawn with no current environment")
            env = self.current.env
        goroutine = Goroutine(id=self._next_id, env=env, entry=entry,
                              args=args)
        self._next_id += 1
        self.goroutines.append(goroutine)
        if self.main is None:
            self.main = goroutine
        goroutine.state = "runnable"
        # A goroutine starts on its spawner's core (cheap: the spawner's
        # cache is warm with its arguments); core 0 when spawned from
        # outside the machine.  On one core this is the classic queue.
        if self.current is not None:
            goroutine.core = self.current.core
        if self.spans is not None:
            self.spans.on_spawn(self.current, goroutine)
        goroutine.ready_at = self.cpu.clock.now_ns
        self.cores[goroutine.core].runq.append(goroutine)
        return goroutine

    def _first_activation(self, goroutine: Goroutine, cpu: CPU) -> dict:
        stack = self.litterbox.allocate_initial_stack(goroutine)
        return {
            "pc": goroutine.entry,
            "fp": stack.base,
            "sp": stack.base + 16,
            "stack": stack,
            "operands": list(goroutine.args),
            "ctx": cpu.ctx,
        }

    # -- wake/park -------------------------------------------------------------

    def wake(self, key: tuple) -> None:
        """Move every goroutine blocked on ``key`` back to runnable.

        Each waiter re-enqueues on the core it last ran on; if that
        core is swamped while another idles, work stealing migrates it.
        """
        waiters = self.blocked.pop(key, None)
        if not waiters:
            return
        now = self.cpu.clock.now_ns
        for goroutine in waiters:
            goroutine.state = "runnable"
            goroutine.wait_key = None
            goroutine.ready_at = now
            self.cores[goroutine.core].runq.append(goroutine)

    def _park(self, goroutine: Goroutine, key: tuple, cpu: CPU) -> None:
        goroutine.state = "blocked"
        goroutine.wait_key = key
        goroutine.activation = cpu.save_activation()
        self.blocked.setdefault(key, []).append(goroutine)

    # -- the drive loop ----------------------------------------------------------

    def run(self, max_total_steps: int = 200_000_000,
            stop_when_main_exits: bool = True) -> RunResult:
        """Drive goroutines until HALT, main exit, a fault, or idleness."""
        self._total = 0
        if self.smp:
            return self._run_smp(max_total_steps, stop_when_main_exits)
        return self._run_uni(max_total_steps, stop_when_main_exits)

    def _run_uni(self, max_total_steps: int,
                 stop_when_main_exits: bool) -> RunResult:
        """The historical single-core loop, arithmetic untouched."""
        core = self.cores[0]
        while core.runq:
            goroutine = core.runq.popleft()
            if goroutine.state != "runnable":
                continue
            result = self._run_one(core, goroutine, stop_when_main_exits)
            if result is not None:
                return result
            if self._total > max_total_steps:
                raise self._step_budget_fault(max_total_steps)
        return RunResult("idle")

    def _run_smp(self, max_total_steps: int,
                 stop_when_main_exits: bool) -> RunResult:
        """Deterministic N-core interleaving under one clock.

        The next core to run is always the one with the least virtual
        time; the shared clock slides to that core's frontier (or the
        goroutine's ready instant, whichever is later) for the slice
        and the frontier is recorded back afterwards.  On any exit the
        clock lands on the global frontier, so callers driving the
        machine in pieces (servers, load generators) observe a
        monotonic clock between drives.
        """
        clock = self.cpu.clock
        try:
            while True:
                core = self._pick_core()
                if core is None:
                    return RunResult("idle")
                goroutine = core.runq.popleft()
                if goroutine.state != "runnable":
                    continue
                clock.now_ns = max(core.vtime, goroutine.ready_at)
                try:
                    result = self._run_one(core, goroutine,
                                           stop_when_main_exits)
                finally:
                    core.vtime = clock.now_ns
                if result is not None:
                    return result
                if self._total > max_total_steps:
                    raise self._step_budget_fault(max_total_steps)
        finally:
            clock.now_ns = max(clock.now_ns,
                               max(c.vtime for c in self.cores))

    def _pick_core(self) -> SchedCore | None:
        """The core that runs next: strictly the least virtual time,
        lowest id on ties.  An idle winner first steals the far half of
        the busiest queue; ``None`` means every queue is empty."""
        best = None
        for core in self.cores:
            if best is None or core.vtime < best.vtime:
                best = core
        if not best.runq:
            busiest = None
            for core in self.cores:
                if core.runq and (busiest is None
                                  or len(core.runq) > len(busiest.runq)):
                    busiest = core
            if busiest is None:
                return None
            take = (len(busiest.runq) + 1) // 2
            for _ in range(take):
                stolen = busiest.runq.popleft()
                stolen.core = best.id
                best.runq.append(stolen)
            self.steals += 1
        return best

    def _step_budget_fault(self, max_total_steps: int) -> Fault:
        starved = sorted(g.id for g in self.goroutines
                         if g.state in ("runnable", "running"))
        return Fault(
            "exec",
            "scheduler exceeded step budget of "
            f"{max_total_steps} with runnable goroutines "
            f"{starved} still starved")

    def _run_one(self, core: SchedCore, goroutine: Goroutine,
                 stop_when_main_exits: bool) -> RunResult | None:
        """One scheduling slice of ``goroutine`` on ``core``; a
        RunResult ends the drive, ``None`` continues it."""
        cpu = core.cpu
        self.current = goroutine
        self.current_core = core
        goroutine.core = core.id
        try:
            if goroutine.activation is None:
                goroutine.activation = self._first_activation(goroutine, cpu)
            cpu.restore_activation(goroutine.activation)
            if self.smp:
                # A migrated goroutine's activation still references
                # the previous core's translation context; install this
                # core's own (its private TLB/PKRU).  The Execute hook
                # below re-applies the environment's restrictions to it.
                cpu.ctx = core.ctx
            tracer = self.tracer
            if tracer is None:
                cpu.clock.charge(COSTS.SCHED_SWITCH)
                # Execute hook: resume in the goroutine's own
                # environment.
                self.litterbox.execute(cpu, goroutine)
            else:
                if self.smp:
                    tracer.core = core.id
                span = tracer.begin("switch",
                                    f"execute:{goroutine.env.name}",
                                    env=goroutine.env.name,
                                    goroutine=goroutine.id)
                cpu.clock.charge(COSTS.SCHED_SWITCH)
                self.litterbox.execute(cpu, goroutine)
                tracer.set_env(goroutine.env.name, at=span.t0)
                tracer.end(span)
            if self.profiler is not None:
                self.profiler.set_env(goroutine.env.name)
            if self.spans is not None and goroutine.trace_ctx is not None:
                self.spans.on_slice(goroutine, core.id)
            goroutine.state = "running"

            # run_slice counts architectural instructions (2 per
            # fused dispatch), so the slice budget — and thus
            # rotation timing and SCHED_SWITCH charges — is
            # identical with fusion on or off.  slice_executed is
            # valid even when the slice ends in an exception, so
            # the step total stays exact across parks/faults/exits.
            interp = self.interp
            try:
                interp.run_slice(cpu, self.TIME_SLICE)
            finally:
                self._total += interp.slice_executed
            if self.quota is not None:
                # Slice-granular CPU metering: a goroutine that ran
                # its slice to exhaustion inside an enclosure is
                # charged against that enclosure's step budget; an
                # overrun raises QuotaFault into the containment
                # path below, exactly like a memory fault.  One table
                # serves all cores, so a tenant's budget is the sum of
                # its consumption machine-wide.
                self.quota.charge_steps(goroutine.env,
                                        interp.slice_executed)
            # Preemption point: rotate.
            goroutine.state = "runnable"
            goroutine.activation = cpu.save_activation()
            goroutine.ready_at = cpu.clock.now_ns
            core.runq.append(goroutine)
        except WouldBlock as block:
            self._park(goroutine, block.wait_key, cpu)
        except GoroutineExit:
            goroutine.state = "done"
            goroutine.exit = "ran"
            goroutine.activation = None
            self.litterbox.release_stacks(goroutine)
            if stop_when_main_exits and goroutine is self.main:
                return RunResult("exited", 0)
        except MachineHalt as halt:
            goroutine.state = "done"
            goroutine.exit = "ran"
            return RunResult("halted", halt.exit_code)
        except Fault as fault:
            return self._on_fault(goroutine, fault, stop_when_main_exits,
                                  cpu)
        return None

    # -- fault containment -----------------------------------------------------

    def _on_fault(self, goroutine: Goroutine, fault: Fault,
                  stop_when_main_exits: bool,
                  cpu: CPU | None = None) -> RunResult | None:
        """Apply the machine's fault policy to a fault raised while
        ``goroutine`` was running.

        Under ``abort`` (the paper's §2.2 semantics: "a fault stops the
        execution of the closure and aborts the program") the whole run
        ends.  Otherwise the fault is *contained*: the goroutine's
        environment stack is unwound back to its base frame
        (Epilog-on-fault), the backend charges the hardware cost of
        fielding the fault, the kernel reclaims the goroutine's fds, and
        only the offending goroutine dies.
        """
        if cpu is None:
            cpu = self.cpu
        fault.attribute(goroutine.env)
        fault.core = goroutine.core
        goroutine.fault = fault
        if self.fault_policy == "abort":
            goroutine.state = "done"
            goroutine.exit = "killed-by-fault"
            return RunResult("faulted", fault=fault)

        lb = self.litterbox
        fault_env = goroutine.env.name
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin("contain", f"contain:{fault_env}",
                                env=fault_env, goroutine=goroutine.id,
                                fault=fault.kind)
        # 1. Unwind nested Prolog frames back to the goroutine's base
        #    environment (Epilog-on-fault).
        depth = lb.unwind_on_fault(cpu, goroutine)
        # 2. The backend pays for fielding the fault (signal delivery /
        #    VM exit / kernel trap) without tearing the machine down.
        lb.backend.contained_fault(cpu)
        # 3. Count it against the faulting enclosure; a QuarantinedFault
        #    is the quarantine *working*, not a fresh violation.
        if not isinstance(fault, QuarantinedFault):
            lb.note_contained_fault(fault)
        if lb.metrics is not None:
            lb.metrics.contained.inc(env=fault_env, kind=fault.kind)
        # 4. The kernel reclaims the dead goroutine's fds and wake keys.
        reclaimed = self.reclaim(goroutine.id) if self.reclaim else 0
        goroutine.state = "done"
        goroutine.exit = "killed-by-fault"
        goroutine.activation = None
        lb.release_stacks(goroutine)
        self.contained.append(fault)
        if self.spans is not None:
            self.spans.on_contained_fault(goroutine, fault.kind,
                                          goroutine.core)
        if span is not None:
            span.args.update(detail=fault.detail, unwound=depth,
                             reclaimed_fds=reclaimed)
            tracer.end(span)

        if goroutine.restarts < self.restart_limit:
            fresh = self.spawn(goroutine.entry, goroutine.args,
                               env=goroutine.env)
            fresh.restarts = goroutine.restarts + 1
            # The restart serves future requests, not the one that
            # died with its spawner's context.
            fresh.trace_ctx = None
            if goroutine is self.main:
                self.main = fresh
            if tracer is not None:
                tracer.instant("contain", "contain:restart",
                               env=fault_env, goroutine=fresh.id,
                               generation=fresh.restarts)
            return None
        if goroutine is self.main and stop_when_main_exits:
            return RunResult("killed", 1, fault)
        return None

    def exit_summary(self) -> dict[int, dict]:
        """Per-goroutine end-of-run report: how each one ended up."""
        summary: dict[int, dict] = {}
        for g in self.goroutines:
            if g.state == "done":
                state = g.exit or "ran"
            elif g.state == "blocked":
                state = "parked"
            else:
                state = g.state  # new | runnable | running
            entry = {"state": state, "env": g.env.name, "core": g.core}
            if g.fault is not None:
                entry["fault"] = f"{g.fault.kind}: {g.fault.detail}"
            if g.restarts:
                entry["restarts"] = g.restarts
            summary[g.id] = entry
        return summary

    # -- inspection -----------------------------------------------------------

    def blocked_count(self) -> int:
        return sum(len(v) for v in self.blocked.values())

    def live_goroutines(self) -> list[Goroutine]:
        return [g for g in self.goroutines if g.state != "done"]
