"""User-level goroutine scheduler (paper §5.1 Runtime).

"The scheduler uses the Execute hook to switch between goroutines
associated with different environments" and "execution environments are
transitively inherited by goroutine creation so that user-level threads
created inside an enclosure's environment continue to execute in the
same environment" (preventing escalation through `go`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.enclosure import Environment
from repro.errors import Fault, MachineHalt, QuarantinedFault, WouldBlock
from repro.hw.clock import COSTS
from repro.hw.cpu import CPU, StackSegment
from repro.isa.interp import GoroutineExit, Interpreter


@dataclass
class Goroutine:
    """One user-level thread."""

    id: int
    env: Environment
    entry: int
    args: tuple[int, ...] = ()
    activation: dict | None = None
    #: Stack of (env, fp, sp, stack) saved by Prolog for nested switches.
    env_stack: list = field(default_factory=list)
    #: Per-environment split stacks: env id -> StackSegment.
    stacks: dict[int, StackSegment] = field(default_factory=dict)
    state: str = "new"  # new | runnable | blocked | done
    wait_key: tuple | None = None
    #: How the goroutine ended: "" while live, then "ran" (exited
    #: normally) or "killed-by-fault" (containment).
    exit: str = ""
    #: The contained fault that killed this goroutine, if any.
    fault: Fault | None = None
    #: Supervised-restart generation (see ``Scheduler.restart_limit``).
    restarts: int = 0


@dataclass
class RunResult:
    """Outcome of a scheduler drive."""

    status: str              # exited | halted | faulted | killed | idle
    exit_code: int = 0
    fault: Fault | None = None
    #: Per-goroutine exit summary (filled in by ``Machine._finish``).
    goroutines: dict | None = None


class Scheduler:
    """Cooperative round-robin scheduler over one simulated CPU."""

    TIME_SLICE = 200_000  # instructions before a voluntary rotate

    def __init__(self, cpu: CPU, interp: Interpreter, litterbox) -> None:
        self.cpu = cpu
        self.interp = interp
        self.litterbox = litterbox
        self.goroutines: list[Goroutine] = []
        self.runnable: deque[Goroutine] = deque()
        self.blocked: dict[tuple, list[Goroutine]] = {}
        self.current: Goroutine | None = None
        self.main: Goroutine | None = None
        #: Optional enforcement-event tracer, wired by the machine.
        self.tracer = None
        #: Optional sim-time sampling profiler, wired by the machine;
        #: Execute re-points its env attribution like the tracer's.
        self.profiler = None
        #: Fault policy: "abort" (paper §2.2), "kill-goroutine", or
        #: "quarantine" (kill + trip the enclosure's quarantine breaker).
        self.fault_policy = "abort"
        #: Optional kernel callback ``reclaim(gid) -> int`` that closes
        #: the dead goroutine's fds; wired by the machine.
        self.reclaim = None
        #: Faults contained (not aborted) so far, in order.
        self.contained: list[Fault] = []
        #: How many times a killed goroutine may be respawned at its
        #: original entry (supervised restart, 0 = never).
        self.restart_limit = 0
        #: Optional per-enclosure quota table (machine-wired): charged
        #: one completed slice's instructions at every rotation, keyed
        #: by the environment the goroutine ended the slice in.  ``None``
        #: keeps the drive loop quota-free and bit-identical.
        self.quota = None
        self._next_id = 1

    # -- creation ------------------------------------------------------------

    def spawn(self, entry: int, args: tuple[int, ...] = (),
              env: Environment | None = None) -> Goroutine:
        """Create a goroutine; it inherits the spawner's environment
        unless one is given explicitly (only the machine does that,
        for the main goroutine)."""
        if env is None:
            if self.current is None:
                raise Fault("exec", "spawn with no current environment")
            env = self.current.env
        goroutine = Goroutine(id=self._next_id, env=env, entry=entry,
                              args=args)
        self._next_id += 1
        self.goroutines.append(goroutine)
        if self.main is None:
            self.main = goroutine
        goroutine.state = "runnable"
        self.runnable.append(goroutine)
        return goroutine

    def _first_activation(self, goroutine: Goroutine) -> dict:
        stack = self.litterbox.allocate_initial_stack(goroutine)
        return {
            "pc": goroutine.entry,
            "fp": stack.base,
            "sp": stack.base + 16,
            "stack": stack,
            "operands": list(goroutine.args),
            "ctx": self.cpu.ctx,
        }

    # -- wake/park -------------------------------------------------------------

    def wake(self, key: tuple) -> None:
        """Move every goroutine blocked on ``key`` back to runnable."""
        waiters = self.blocked.pop(key, None)
        if not waiters:
            return
        for goroutine in waiters:
            goroutine.state = "runnable"
            goroutine.wait_key = None
            self.runnable.append(goroutine)

    def _park(self, goroutine: Goroutine, key: tuple) -> None:
        goroutine.state = "blocked"
        goroutine.wait_key = key
        goroutine.activation = self.cpu.save_activation()
        self.blocked.setdefault(key, []).append(goroutine)

    # -- the drive loop ----------------------------------------------------------

    def run(self, max_total_steps: int = 200_000_000,
            stop_when_main_exits: bool = True) -> RunResult:
        """Drive goroutines until HALT, main exit, a fault, or idleness."""
        total = 0
        while self.runnable:
            goroutine = self.runnable.popleft()
            if goroutine.state != "runnable":
                continue
            self.current = goroutine
            try:
                if goroutine.activation is None:
                    goroutine.activation = self._first_activation(goroutine)
                self.cpu.restore_activation(goroutine.activation)
                tracer = self.tracer
                if tracer is None:
                    self.cpu.clock.charge(COSTS.SCHED_SWITCH)
                    # Execute hook: resume in the goroutine's own
                    # environment.
                    self.litterbox.execute(self.cpu, goroutine)
                else:
                    span = tracer.begin("switch",
                                        f"execute:{goroutine.env.name}",
                                        env=goroutine.env.name,
                                        goroutine=goroutine.id)
                    self.cpu.clock.charge(COSTS.SCHED_SWITCH)
                    self.litterbox.execute(self.cpu, goroutine)
                    tracer.set_env(goroutine.env.name, at=span.t0)
                    tracer.end(span)
                if self.profiler is not None:
                    self.profiler.set_env(goroutine.env.name)
                goroutine.state = "running"

                # run_slice counts architectural instructions (2 per
                # fused dispatch), so the slice budget — and thus
                # rotation timing and SCHED_SWITCH charges — is
                # identical with fusion on or off.  slice_executed is
                # valid even when the slice ends in an exception, so
                # `total` stays exact across parks/faults/exits.
                interp = self.interp
                try:
                    interp.run_slice(self.cpu, self.TIME_SLICE)
                finally:
                    total += interp.slice_executed
                if self.quota is not None:
                    # Slice-granular CPU metering: a goroutine that ran
                    # its slice to exhaustion inside an enclosure is
                    # charged against that enclosure's step budget; an
                    # overrun raises QuotaFault into the containment
                    # path below, exactly like a memory fault.
                    self.quota.charge_steps(goroutine.env,
                                            interp.slice_executed)
                # Preemption point: rotate.
                goroutine.state = "runnable"
                goroutine.activation = self.cpu.save_activation()
                self.runnable.append(goroutine)
            except WouldBlock as block:
                self._park(goroutine, block.wait_key)
            except GoroutineExit:
                goroutine.state = "done"
                goroutine.exit = "ran"
                goroutine.activation = None
                self.litterbox.release_stacks(goroutine)
                if stop_when_main_exits and goroutine is self.main:
                    return RunResult("exited", 0)
            except MachineHalt as halt:
                goroutine.state = "done"
                goroutine.exit = "ran"
                return RunResult("halted", halt.exit_code)
            except Fault as fault:
                result = self._on_fault(goroutine, fault,
                                        stop_when_main_exits)
                if result is not None:
                    return result
            if total > max_total_steps:
                starved = sorted(g.id for g in self.goroutines
                                 if g.state in ("runnable", "running"))
                raise Fault(
                    "exec",
                    "scheduler exceeded step budget of "
                    f"{max_total_steps} with runnable goroutines "
                    f"{starved} still starved")
        return RunResult("idle")

    # -- fault containment -----------------------------------------------------

    def _on_fault(self, goroutine: Goroutine,
                  fault: Fault, stop_when_main_exits: bool) -> RunResult | None:
        """Apply the machine's fault policy to a fault raised while
        ``goroutine`` was running.

        Under ``abort`` (the paper's §2.2 semantics: "a fault stops the
        execution of the closure and aborts the program") the whole run
        ends.  Otherwise the fault is *contained*: the goroutine's
        environment stack is unwound back to its base frame
        (Epilog-on-fault), the backend charges the hardware cost of
        fielding the fault, the kernel reclaims the goroutine's fds, and
        only the offending goroutine dies.
        """
        fault.attribute(goroutine.env)
        goroutine.fault = fault
        if self.fault_policy == "abort":
            goroutine.state = "done"
            goroutine.exit = "killed-by-fault"
            return RunResult("faulted", fault=fault)

        lb = self.litterbox
        fault_env = goroutine.env.name
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin("contain", f"contain:{fault_env}",
                                env=fault_env, goroutine=goroutine.id,
                                fault=fault.kind)
        # 1. Unwind nested Prolog frames back to the goroutine's base
        #    environment (Epilog-on-fault).
        depth = lb.unwind_on_fault(self.cpu, goroutine)
        # 2. The backend pays for fielding the fault (signal delivery /
        #    VM exit / kernel trap) without tearing the machine down.
        lb.backend.contained_fault(self.cpu)
        # 3. Count it against the faulting enclosure; a QuarantinedFault
        #    is the quarantine *working*, not a fresh violation.
        if not isinstance(fault, QuarantinedFault):
            lb.note_contained_fault(fault)
        if lb.metrics is not None:
            lb.metrics.contained.inc(env=fault_env, kind=fault.kind)
        # 4. The kernel reclaims the dead goroutine's fds and wake keys.
        reclaimed = self.reclaim(goroutine.id) if self.reclaim else 0
        goroutine.state = "done"
        goroutine.exit = "killed-by-fault"
        goroutine.activation = None
        lb.release_stacks(goroutine)
        self.contained.append(fault)
        if span is not None:
            span.args.update(detail=fault.detail, unwound=depth,
                             reclaimed_fds=reclaimed)
            tracer.end(span)

        if goroutine.restarts < self.restart_limit:
            fresh = self.spawn(goroutine.entry, goroutine.args,
                               env=goroutine.env)
            fresh.restarts = goroutine.restarts + 1
            if goroutine is self.main:
                self.main = fresh
            if tracer is not None:
                tracer.instant("contain", "contain:restart",
                               env=fault_env, goroutine=fresh.id,
                               generation=fresh.restarts)
            return None
        if goroutine is self.main and stop_when_main_exits:
            return RunResult("killed", 1, fault)
        return None

    def exit_summary(self) -> dict[int, dict]:
        """Per-goroutine end-of-run report: how each one ended up."""
        summary: dict[int, dict] = {}
        for g in self.goroutines:
            if g.state == "done":
                state = g.exit or "ran"
            elif g.state == "blocked":
                state = "parked"
            else:
                state = g.state  # new | runnable | running
            entry = {"state": state, "env": g.env.name}
            if g.fault is not None:
                entry["fault"] = f"{g.fault.kind}: {g.fault.detail}"
            if g.restarts:
                entry["restarts"] = g.restarts
            summary[g.id] = entry
        return summary

    # -- inspection -----------------------------------------------------------

    def blocked_count(self) -> int:
        return sum(len(v) for v in self.blocked.values())

    def live_goroutines(self) -> list[Goroutine]:
        return [g for g in self.goroutines if g.state != "done"]
