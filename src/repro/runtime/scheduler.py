"""User-level goroutine scheduler (paper §5.1 Runtime).

"The scheduler uses the Execute hook to switch between goroutines
associated with different environments" and "execution environments are
transitively inherited by goroutine creation so that user-level threads
created inside an enclosure's environment continue to execute in the
same environment" (preventing escalation through `go`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.enclosure import Environment
from repro.errors import Fault, MachineHalt, WouldBlock
from repro.hw.clock import COSTS
from repro.hw.cpu import CPU, StackSegment
from repro.isa.interp import GoroutineExit, Interpreter


@dataclass
class Goroutine:
    """One user-level thread."""

    id: int
    env: Environment
    entry: int
    args: tuple[int, ...] = ()
    activation: dict | None = None
    #: Stack of (env, fp, sp, stack) saved by Prolog for nested switches.
    env_stack: list = field(default_factory=list)
    #: Per-environment split stacks: env id -> StackSegment.
    stacks: dict[int, StackSegment] = field(default_factory=dict)
    state: str = "new"  # new | runnable | blocked | done
    wait_key: tuple | None = None


@dataclass
class RunResult:
    """Outcome of a scheduler drive."""

    status: str              # exited | halted | faulted | idle
    exit_code: int = 0
    fault: Fault | None = None


class Scheduler:
    """Cooperative round-robin scheduler over one simulated CPU."""

    TIME_SLICE = 200_000  # instructions before a voluntary rotate

    def __init__(self, cpu: CPU, interp: Interpreter, litterbox) -> None:
        self.cpu = cpu
        self.interp = interp
        self.litterbox = litterbox
        self.goroutines: list[Goroutine] = []
        self.runnable: deque[Goroutine] = deque()
        self.blocked: dict[tuple, list[Goroutine]] = {}
        self.current: Goroutine | None = None
        self.main: Goroutine | None = None
        #: Optional enforcement-event tracer, wired by the machine.
        self.tracer = None
        self._next_id = 1

    # -- creation ------------------------------------------------------------

    def spawn(self, entry: int, args: tuple[int, ...] = (),
              env: Environment | None = None) -> Goroutine:
        """Create a goroutine; it inherits the spawner's environment
        unless one is given explicitly (only the machine does that,
        for the main goroutine)."""
        if env is None:
            if self.current is None:
                raise Fault("exec", "spawn with no current environment")
            env = self.current.env
        goroutine = Goroutine(id=self._next_id, env=env, entry=entry,
                              args=args)
        self._next_id += 1
        self.goroutines.append(goroutine)
        if self.main is None:
            self.main = goroutine
        goroutine.state = "runnable"
        self.runnable.append(goroutine)
        return goroutine

    def _first_activation(self, goroutine: Goroutine) -> dict:
        stack = self.litterbox.allocate_initial_stack(goroutine)
        return {
            "pc": goroutine.entry,
            "fp": stack.base,
            "sp": stack.base + 16,
            "stack": stack,
            "operands": list(goroutine.args),
            "ctx": self.cpu.ctx,
        }

    # -- wake/park -------------------------------------------------------------

    def wake(self, key: tuple) -> None:
        """Move every goroutine blocked on ``key`` back to runnable."""
        waiters = self.blocked.pop(key, None)
        if not waiters:
            return
        for goroutine in waiters:
            goroutine.state = "runnable"
            goroutine.wait_key = None
            self.runnable.append(goroutine)

    def _park(self, goroutine: Goroutine, key: tuple) -> None:
        goroutine.state = "blocked"
        goroutine.wait_key = key
        goroutine.activation = self.cpu.save_activation()
        self.blocked.setdefault(key, []).append(goroutine)

    # -- the drive loop ----------------------------------------------------------

    def run(self, max_total_steps: int = 200_000_000,
            stop_when_main_exits: bool = True) -> RunResult:
        """Drive goroutines until HALT, main exit, a fault, or idleness."""
        total = 0
        while self.runnable:
            goroutine = self.runnable.popleft()
            if goroutine.state != "runnable":
                continue
            self.current = goroutine
            if goroutine.activation is None:
                goroutine.activation = self._first_activation(goroutine)
            self.cpu.restore_activation(goroutine.activation)
            tracer = self.tracer
            if tracer is None:
                self.cpu.clock.charge(COSTS.SCHED_SWITCH)
                # Execute hook: resume in the goroutine's own environment.
                self.litterbox.execute(self.cpu, goroutine)
            else:
                span = tracer.begin("switch",
                                    f"execute:{goroutine.env.name}",
                                    env=goroutine.env.name,
                                    goroutine=goroutine.id)
                self.cpu.clock.charge(COSTS.SCHED_SWITCH)
                self.litterbox.execute(self.cpu, goroutine)
                tracer.set_env(goroutine.env.name, at=span.t0)
                tracer.end(span)
            goroutine.state = "running"

            slice_steps = 0
            try:
                while slice_steps < self.TIME_SLICE:
                    self.interp.step(self.cpu)
                    slice_steps += 1
                    total += 1
                # Preemption point: rotate.
                goroutine.state = "runnable"
                goroutine.activation = self.cpu.save_activation()
                self.runnable.append(goroutine)
            except WouldBlock as block:
                self._park(goroutine, block.wait_key)
            except GoroutineExit:
                goroutine.state = "done"
                goroutine.activation = None
                self.litterbox.release_stacks(goroutine)
                if stop_when_main_exits and goroutine is self.main:
                    return RunResult("exited", 0)
            except MachineHalt as halt:
                goroutine.state = "done"
                return RunResult("halted", halt.exit_code)
            except Fault as fault:
                # "A fault stops the execution of the closure and aborts
                # the program" (§2.2).
                goroutine.state = "done"
                return RunResult("faulted", fault=fault)
            if total > max_total_steps:
                raise Fault("exec", "scheduler exceeded step budget")
        return RunResult("idle")

    # -- inspection -----------------------------------------------------------

    def blocked_count(self) -> int:
        return sum(len(v) for v in self.blocked.values())

    def live_goroutines(self) -> list[Goroutine]:
        return [g for g in self.goroutines if g.state != "done"]
