"""Go-style span allocator with per-package arenas (paper §5.1 Runtime).

"Go's dynamic memory allocator divides the heap into class-size
sections, called spans ... The enclosure-extension adds a level of
indirection by dynamically assigning spans to packages' arenas.  After
adding a span to a given arena, the runtime calls LitterBox's
Transfer."

Spans are 4 pages (the granularity of Table 1's transfer benchmark).
Freed spans return to a central free list and may be reused by *any*
package — each reuse triggers another Transfer, which is exactly the
cost the bild macrobenchmark exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.litterbox import LitterBox
from repro.errors import ConfigError
from repro.hw.clock import COSTS
from repro.hw.pages import PAGE_SIZE
from repro.os.syscalls import SYS_MMAP

SPAN_PAGES = 4
SPAN_SIZE = SPAN_PAGES * PAGE_SIZE

#: Size classes, Go-style; larger objects get dedicated page runs.
SIZE_CLASSES = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def size_class_of(size: int) -> int | None:
    for cls in SIZE_CLASSES:
        if size <= cls:
            return cls
    return None


@dataclass
class Span:
    """A contiguous run of heap pages serving one size class."""

    base: int
    size: int
    size_class: int      # 0 for large-object spans
    owner: str = ""
    cursor: int = 0

    def remaining(self) -> int:
        return self.size - self.cursor

    def bump(self, amount: int) -> int:
        addr = self.base + self.cursor
        self.cursor += amount
        return addr


@dataclass
class Allocator:
    """The runtime allocator; one instance per machine."""

    litterbox: LitterBox
    #: pkg -> size class -> active span
    _active: dict[str, dict[int, Span]] = field(default_factory=dict)
    #: pkg -> dedicated large-object span runs (size class 0).  Tracked
    #: so recycle_package can reclaim a package's *whole* arena — a
    #: hoarder's dedicated runs must not outlive its eviction.
    _large: dict[str, list[Span]] = field(default_factory=dict)
    _free_spans: list[Span] = field(default_factory=list)
    spans_created: int = 0
    bytes_allocated: int = 0
    #: Optional per-enclosure quota table (machine-wired); ``None``
    #: keeps every span grab quota-free and bit-identical.
    quota: object | None = None
    #: Optional enforcement metrics (machine-wired): recycle_package
    #: reports reclaimed spans/bytes through
    #: ``allocator_reclaimed_bytes_total{pkg}``.
    metrics: object | None = None

    def alloc(self, pkg: str, size: int) -> int:
        """Allocate ``size`` bytes inside ``pkg``'s arena."""
        if size <= 0:
            raise ConfigError(f"allocation of {size} bytes")
        size = (size + 7) & ~7  # word alignment
        self.bytes_allocated += size
        cls = size_class_of(size)
        clock = self.litterbox.clock
        if cls is None:
            # Large object: a dedicated span run, transferred directly.
            pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
            span = self._grab_span(pkg, pages, size_class=0)
            self._large.setdefault(pkg, []).append(span)
            clock.charge(COSTS.ALLOC_SLOW)
            return span.bump(size)
        arena = self._active.setdefault(pkg, {})
        span = arena.get(cls)
        if span is None or span.remaining() < cls:
            span = self._grab_span(pkg, SPAN_PAGES, cls)
            arena[cls] = span
            clock.charge(COSTS.ALLOC_SLOW)
        else:
            clock.charge(COSTS.ALLOC_FAST)
        return span.bump(cls)

    def _grab_span(self, pkg: str, pages: int, size_class: int) -> Span:
        """Take a span from the free list or mmap a fresh one, then
        Transfer it into ``pkg``'s arena."""
        if self.quota is not None:
            # Charged before the span is acquired, so an overrun leaves
            # the free list and the arena untouched (QuotaFault).
            self.quota.charge_span(pkg)
        span = None
        for index, candidate in enumerate(self._free_spans):
            if candidate.size == pages * PAGE_SIZE:
                span = self._free_spans.pop(index)
                break
        if span is None:
            base = self.litterbox.kernel.syscall(
                SYS_MMAP, (0, pages * PAGE_SIZE, 3, 0), None, pkru=0)
            if base < 0:
                raise ConfigError("heap mmap failed")
            span = Span(base, pages * PAGE_SIZE, size_class)
            self.spans_created += 1
        span.size_class = size_class
        span.cursor = 0
        span.owner = pkg
        self.litterbox.transfer(span.base, span.size, pkg)
        return span

    def recycle_package(self, pkg: str) -> int:
        """Release all of ``pkg``'s active spans to the central free list
        (they can be re-Transferred to any package later).  Returns the
        number of recycled spans."""
        arena = self._active.pop(pkg, None) or {}
        spans = list(arena.values()) + self._large.pop(pkg, [])
        if not spans:
            return 0
        count = 0
        reclaimed_bytes = 0
        for span in spans:
            span.owner = ""
            span.cursor = 0
            self._free_spans.append(span)
            count += 1
            reclaimed_bytes += span.size
        if self.quota is not None:
            self.quota.release_spans(pkg, count)
        if self.metrics is not None:
            self.metrics.allocator_reclaimed_bytes.inc(
                reclaimed_bytes, pkg=pkg)
        return count

    def arena_spans(self, pkg: str) -> list[Span]:
        return (list(self._active.get(pkg, {}).values())
                + list(self._large.get(pkg, ())))
