"""Structured tracing of LitterBox enforcement events.

The paper's evaluation (§6, Tables 1–2) is about *where* enclosure
overhead goes — switches vs. transfers vs. syscall filtering vs. VM
exits.  This module makes that observable instead of asserted: every
enforcement point (``Prolog``/``Epilog`` switches, ``FilterSyscall``
decisions, ``Transfer`` operations, ``Execute`` scheduler hand-offs,
VM exits, MPK/page-fault violations) emits a :class:`TraceEvent`
carrying a simulated-nanosecond timestamp and enclosure/package
attribution.

Attribution model
-----------------

The tracer keeps an *environment timeline*: ``set_env`` marks the
simulated instant at which the CPU entered an execution environment,
and the gross simulated time of each environment is the sum of its
timeline intervals.  Enforcement operations are *spans*
(:meth:`Tracer.begin` / :meth:`Tracer.end`); only the **outermost**
span of a nesting accumulates into the per-environment category totals,
so e.g. the ``pkey_mprotect`` host system call inside an MPK Transfer
is visible as a nested event but never double-counted.  An
environment's *compute* time is its gross time minus its accumulated
enforcement time.

A switch interval belongs to the environment being **entered** for
Prolog (the enclosure pays its own entry) and to the environment being
**exited** for Epilog, so an enclosure's gross time runs from Prolog
start to Epilog end — exactly the window Table 1's call benchmark
measures.

Costs: with tracing disabled every hook site reduces to one ``is None``
attribute test (the machine leaves ``tracer`` as ``None``); no event
objects are built and no simulated time is ever charged by the tracer
itself, so simulated-ns outputs are bit-identical either way.

Exports
-------

* :meth:`Tracer.summary` — per-environment sim-time breakdown
  (switch/syscall/transfer/compute shares) for benchmarks to *measure*
  the Table 1/2 shape claims;
* :meth:`Tracer.describe` — the ``--trace`` text report;
* :meth:`Tracer.chrome_trace` — Chrome trace-event JSON (one thread
  lane per environment; loadable in Perfetto / ``chrome://tracing``);
* :func:`validate_chrome_trace` — the strict schema check used by the
  tests and the CI trace smoke step.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.hw.clock import SimClock

#: Categories an event may carry; also the category axis of the
#: per-environment breakdown (``violation`` events are zero-duration).
#: ``shootdown`` only appears on multi-core machines: cross-core
#: TLB-shootdown IPI bursts charged by page-table/PKRU revocations.
CATEGORIES = ("switch", "syscall", "transfer", "filter", "vm_exit",
              "violation", "contain", "quota", "shootdown")

#: Chrome trace-event phases the exporter emits.
_PHASES = ("X", "i", "M")


class TraceFormatError(ValueError):
    """A trace document failed the strict Chrome trace-event check."""


@dataclass
class TraceEvent:
    """One enforcement event, in simulated time.

    ``ts``/``dur`` are simulated nanoseconds (the Chrome exporter
    converts to microseconds, the unit that format requires).
    """

    name: str                 # e.g. "prolog:rcl", "sys:write", "filter:deny"
    cat: str                  # one of CATEGORIES
    ph: str                   # "X" complete span | "i" instant
    ts: float                 # sim ns at event start
    dur: float = 0.0          # sim ns, complete events only
    env: str = ""             # execution-environment attribution
    pkg: str = ""             # package attribution, where meaningful
    args: dict = field(default_factory=dict)

    @property
    def kind(self) -> str:
        """The event family: the name up to the first ``:``."""
        return self.name.split(":", 1)[0]


class _Span(object):
    """Mutable token for an open enforcement span."""

    __slots__ = ("cat", "name", "t0", "env", "pkg", "args", "outermost")

    def __init__(self, cat: str, name: str, t0: float, env: str,
                 pkg: str, args: dict, outermost: bool):
        self.cat = cat
        self.name = name
        self.t0 = t0
        self.env = env
        self.pkg = pkg
        self.args = args
        self.outermost = outermost


class Tracer:
    """Collects enforcement events against one machine's ``SimClock``."""

    def __init__(self, clock: SimClock, initial_env: str = "trusted"):
        self.clock = clock
        self.events: list[TraceEvent] = []
        self._open: list[_Span] = []
        self._initial_env = initial_env
        self._env = initial_env
        self._env_since = clock.now_ns
        self._gross: dict[str, float] = {}
        self._cat_ns: dict[tuple[str, str], float] = {}
        #: The core currently executing, stamped onto every event's args
        #: while set.  ``None`` on a single-core machine — events there
        #: carry no ``core`` key, keeping historical traces bit-identical.
        self.core: int | None = None

    # -- environment timeline ------------------------------------------------

    @property
    def current_env(self) -> str:
        return self._env

    def set_env(self, name: str, at: float | None = None) -> None:
        """Mark that the CPU entered environment ``name``.

        ``at`` back-dates the boundary (Prolog attributes its own span
        to the environment being entered).
        """
        now = self.clock.now_ns if at is None else at
        elapsed = now - self._env_since
        if elapsed > 0:
            self._gross[self._env] = self._gross.get(self._env, 0.0) + elapsed
        self._env = name
        self._env_since = now

    # -- spans ---------------------------------------------------------------

    def begin(self, cat: str, name: str, env: str | None = None,
              pkg: str = "", **args) -> _Span:
        """Open an enforcement span at the current simulated instant."""
        if self.core is not None:
            args.setdefault("core", self.core)
        span = _Span(cat, name, self.clock.now_ns,
                     self._env if env is None else env,
                     pkg, args, outermost=not self._open)
        self._open.append(span)
        return span

    def end(self, span: _Span) -> TraceEvent:
        """Close ``span``, record its event, and accumulate its duration
        into the per-environment category totals iff it is outermost."""
        if self._open and self._open[-1] is span:
            self._open.pop()
        else:  # tolerate mismatched ends on fault-unwind paths
            try:
                self._open.remove(span)
            except ValueError:
                pass
        dur = self.clock.now_ns - span.t0
        if span.outermost:
            key = (span.env, span.cat)
            self._cat_ns[key] = self._cat_ns.get(key, 0.0) + dur
        event = TraceEvent(span.name, span.cat, "X", span.t0, dur,
                           span.env, span.pkg, span.args)
        self.events.append(event)
        return event

    def note(self, **args) -> None:
        """Attach key/values to the innermost open span (if any)."""
        if self._open:
            self._open[-1].args.update(args)

    # -- point events --------------------------------------------------------

    def instant(self, cat: str, name: str, env: str | None = None,
                pkg: str = "", **args) -> TraceEvent:
        """Record a zero-duration event (filter verdicts, violations)."""
        if self.core is not None:
            args.setdefault("core", self.core)
        event = TraceEvent(name, cat, "i", self.clock.now_ns, 0.0,
                           self._env if env is None else env, pkg, args)
        self.events.append(event)
        return event

    def complete(self, cat: str, name: str, t0: float, dur: float,
                 env: str | None = None, pkg: str = "", **args) -> TraceEvent:
        """Record a span whose extent is already known (VM exits: the
        EXIT+RESUME round trip is charged as one block)."""
        if self.core is not None:
            args.setdefault("core", self.core)
        use_env = self._env if env is None else env
        if not self._open:
            key = (use_env, cat)
            self._cat_ns[key] = self._cat_ns.get(key, 0.0) + dur
        event = TraceEvent(name, cat, "X", t0, dur, use_env, pkg, args)
        self.events.append(event)
        return event

    # -- queries -------------------------------------------------------------

    def select(self, kind: str | None = None, cat: str | None = None,
               env: str | None = None) -> list[TraceEvent]:
        """Events filtered by family (name prefix), category, and env."""
        out = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if cat is not None and event.cat != cat:
                continue
            if env is not None and event.env != env:
                continue
            out.append(event)
        return out

    # -- aggregation ---------------------------------------------------------

    def summary(self) -> dict[str, dict]:
        """Per-environment sim-time breakdown.

        Returns ``{env: {"total_ns", "switch_ns", "syscall_ns",
        "transfer_ns", "contain_ns", "compute_ns", "counts": {...}}}``
        where ``syscall_ns`` folds in VM-exit time accumulated at top
        level, ``contain_ns`` is time spent unwinding/reclaiming after
        contained faults, and ``compute_ns`` is gross minus all
        enforcement categories.
        """
        now = self.clock.now_ns
        gross = dict(self._gross)
        gross[self._env] = gross.get(self._env, 0.0) + (now - self._env_since)

        counts: dict[tuple[str, str], int] = {}
        for event in self.events:
            key = (event.env, event.kind)
            counts[key] = counts.get(key, 0) + 1

        envs = set(gross)
        envs.update(env for env, _ in self._cat_ns)
        envs.update(env for env, _ in counts)

        out: dict[str, dict] = {}
        for env in sorted(envs):
            cats = {cat: self._cat_ns.get((env, cat), 0.0)
                    for cat in CATEGORIES}
            enforcement = sum(cats.values())
            total = gross.get(env, 0.0)
            env_counts = {kind: n for (e, kind), n in counts.items()
                          if e == env}
            out[env] = {
                "total_ns": total,
                "switch_ns": cats["switch"],
                "syscall_ns": cats["syscall"] + cats["vm_exit"],
                "transfer_ns": cats["transfer"],
                "contain_ns": cats["contain"],
                "compute_ns": max(0.0, total - enforcement),
                "counts": env_counts,
            }
            if cats["shootdown"]:
                # SMP only: zero on a single-core machine, where the
                # key is omitted so historical summaries are unchanged.
                out[env]["shootdown_ns"] = cats["shootdown"]
        return out

    def describe(self) -> list[str]:
        """Human-readable per-environment breakdown for ``--trace``."""

        def pct(part: float, whole: float) -> str:
            return f"{100.0 * part / whole:.1f}%" if whole else "0.0%"

        lines = [f"trace: {len(self.events)} enforcement events, "
                 f"{self.clock.now_ns / 1e6:.3f} ms simulated"]
        for env, row in self.summary().items():
            counts = row["counts"]
            total = row["total_ns"]
            denied = sum(1 for e in self.select(cat="filter", env=env)
                         if e.name == "filter:deny")
            lines.append(
                f"  {env}: total {total / 1e6:.3f} ms | "
                f"switch {pct(row['switch_ns'], total)} "
                f"(n={counts.get('prolog', 0) + counts.get('epilog', 0)}) "
                f"syscall {pct(row['syscall_ns'], total)} "
                f"(denied={denied}) "
                f"transfer {pct(row['transfer_ns'], total)} "
                f"(n={counts.get('transfer', 0)}) "
                f"vm-exits={counts.get('vm_exit', 0)} "
                f"violations={counts.get('violation', 0)} "
                f"contained={counts.get('contain', 0)} "
                f"compute {pct(row['compute_ns'], total)}")
        return lines

    # -- Chrome trace-event export -------------------------------------------

    def chrome_trace(self) -> dict:
        """Render the event list in Chrome trace-event JSON format.

        One process (the machine), one thread lane per execution
        environment, timestamps in microseconds as the format requires.
        Loadable in Perfetto / ``chrome://tracing``.
        """
        tids: dict[str, int] = {}

        def tid_of(env: str) -> int:
            if env not in tids:
                tids[env] = len(tids)
            return tids[env]

        tid_of(self._initial_env)  # lane 0 is always the starting env
        trace_events: list[dict] = []
        for event in self.events:
            record = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts": event.ts / 1000.0,
                "pid": 1,
                "tid": tid_of(event.env or "?"),
                "args": dict(event.args),
            }
            if event.pkg:
                record["args"]["pkg"] = event.pkg
            if event.ph == "X":
                record["dur"] = event.dur / 1000.0
            elif event.ph == "i":
                record["s"] = "t"
            trace_events.append(record)
        metadata = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                     "args": {"name": "repro machine (simulated ns)"}}]
        for env, tid in sorted(tids.items(), key=lambda item: item[1]):
            metadata.append({"name": "thread_name", "ph": "M", "pid": 1,
                             "tid": tid, "args": {"name": f"env:{env}"}})
        return {
            "traceEvents": metadata + trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "tool": "repro",
                "clock": "simulated-ns",
                "sim_total_ns": self.clock.now_ns,
            },
        }

    def write_chrome_trace(self, path: str | pathlib.Path) -> int:
        """Serialize :meth:`chrome_trace` to ``path``; returns the
        number of trace events written (metadata included)."""
        document = self.chrome_trace()
        pathlib.Path(path).write_text(
            json.dumps(document, indent=1, sort_keys=True) + "\n")
        return len(document["traceEvents"])


def validate_chrome_trace(source) -> int:
    """Strictly validate a Chrome trace-event document.

    ``source`` may be a dict (already parsed) or a path.  Raises
    :class:`TraceFormatError` on the first problem; returns the number
    of events on success.  Checks the JSON Object Format envelope and,
    per event, the phase-specific required fields — the invariants
    Perfetto's importer relies on.
    """
    if isinstance(source, (str, pathlib.Path)):
        try:
            document = json.loads(pathlib.Path(source).read_text())
        except json.JSONDecodeError as err:
            raise TraceFormatError(f"not JSON: {err}") from None
    else:
        document = source
    if not isinstance(document, dict):
        raise TraceFormatError("top level must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise TraceFormatError("traceEvents must be a non-empty array")
    if document.get("displayTimeUnit") not in ("ms", "ns"):
        raise TraceFormatError("displayTimeUnit must be 'ms' or 'ns'")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise TraceFormatError(f"{where}: not an object")
        ph = event.get("ph")
        if ph not in _PHASES:
            raise TraceFormatError(f"{where}: bad phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise TraceFormatError(f"{where}: missing {key!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            raise TraceFormatError(f"{where}: name must be a string")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                raise TraceFormatError(f"{where}: {key} must be an int")
        if "args" in event and not isinstance(event["args"], dict):
            raise TraceFormatError(f"{where}: args must be an object")
        if ph == "M":
            continue
        if not isinstance(event.get("cat"), str):
            raise TraceFormatError(f"{where}: missing category")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise TraceFormatError(f"{where}: ts must be a number >= 0")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceFormatError(f"{where}: dur must be a number >= 0")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            raise TraceFormatError(f"{where}: instant scope must be t/p/g")
    return len(events)
